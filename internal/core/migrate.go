package core

import (
	"fmt"

	"groupkey/internal/keycrypt"
	"groupkey/internal/keytree"
)

// Migrate moves an entire group from one scheme to another — the
// reorganization step of the Section 3.4 adaptive strategy ("the key
// server can choose the best scheme to use. And this process can be
// repeated periodically").
//
// Every member of `from` is admitted into `to` (which must be empty) in
// one batch, carrying over its metadata. Because members cannot be handed
// new individual keys out of band mid-session, each member's new
// individual key is delivered wrapped under its previous one, and the rest
// of its new path arrives through the destination scheme's regular joiner
// items. The returned Rekey is therefore fully decryptable by every
// current member using only keys it already holds — no registration
// round-trip.
//
// The cost is Θ(N·log N) keys — this is exactly why the adaptive advisor
// applies hysteresis before recommending a switch.
//
// REQUIREMENT: build the destination with a key-ID base disjoint from the
// source's (WithKeyIDBase) — members index keys by ID, and a reused ID
// from the old scheme would shadow the new key in their stores.
func Migrate(from, to Scheme, metaOf func(keytree.MemberID) MemberMeta, rng ...Option) (*Rekey, error) {
	if to.Size() != 0 {
		return nil, fmt.Errorf("%w: destination scheme already has %d members", ErrBadConfig, to.Size())
	}
	members := from.Members()
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: source group is empty", ErrEmptyGroup)
	}

	// Capture each member's current individual key before touching state.
	oldKey := make(map[keytree.MemberID]keycrypt.Key, len(members))
	for _, m := range members {
		keys, err := from.MemberKeys(m)
		if err != nil {
			return nil, fmt.Errorf("core: migrate: reading keys of %d: %w", m, err)
		}
		if len(keys) == 0 {
			return nil, fmt.Errorf("core: migrate: member %d holds no keys", m)
		}
		oldKey[m] = keys[0] // leaf/individual key first, by Scheme contract
	}

	batch := Batch{}
	for _, m := range members {
		meta := MemberMeta{LossRate: -1}
		if metaOf != nil {
			meta = metaOf(m)
		}
		batch.Joins = append(batch.Joins, Join{ID: m, Meta: meta})
	}
	rekey, err := to.ProcessBatch(batch)
	if err != nil {
		return nil, fmt.Errorf("core: migrate: admitting members: %w", err)
	}

	// Bridge the registration gap: the new individual key of each member,
	// wrapped under its old one. Options carry the entropy source for
	// deterministic tests.
	o, err := buildOptions(rng)
	if err != nil {
		return nil, err
	}
	bridge := Stream{Label: "migration-bridge", Audience: members}
	for _, m := range members {
		welcome, ok := rekey.Welcome[m]
		if !ok {
			return nil, fmt.Errorf("core: migrate: no welcome key for %d", m)
		}
		w, err := keycrypt.Wrap(welcome, oldKey[m], o.rand)
		if err != nil {
			return nil, err
		}
		bridge.JoinerItems = append(bridge.JoinerItems, keytree.Item{
			Wrapped:   w,
			Kind:      keytree.JoinerWrap,
			Level:     0,
			Receivers: []keytree.MemberID{m},
		})
	}
	rekey.Streams = append(rekey.Streams, bridge)
	// The welcome keys were delivered in-band; the registration channel is
	// not involved in a migration.
	rekey.Welcome = nil
	return rekey, nil
}
