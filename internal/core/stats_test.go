package core

import (
	"testing"

	"groupkey/internal/keycrypt"
	"groupkey/internal/keytree"
)

// joinN builds a batch joining members [first, first+n).
func joinN(first, n int) Batch {
	var b Batch
	for i := 0; i < n; i++ {
		b.Joins = append(b.Joins, Join{ID: keytree.MemberID(first + i)})
	}
	return b
}

func TestStatsAllSchemes(t *testing.T) {
	rnd := WithRand(keycrypt.NewDeterministicReader(7))
	build := map[string]func() (Scheme, error){
		"onetree":   func() (Scheme, error) { return NewOneTree(rnd) },
		"naive":     func() (Scheme, error) { return NewNaive(rnd) },
		"tt":        func() (Scheme, error) { return NewTwoPartition(TT, 2, rnd) },
		"qt":        func() (Scheme, error) { return NewTwoPartition(QT, 2, rnd) },
		"losshomog": func() (Scheme, error) { return NewLossHomogenized([]float64{0.05}, rnd) },
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			s, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			if st := s.Stats(); st.Rekeys != 0 || st.KeysEncrypted != 0 {
				t.Fatalf("fresh scheme stats nonzero: %+v", st)
			}
			if _, err := s.ProcessBatch(joinN(1, 8)); err != nil {
				t.Fatal(err)
			}
			r, err := s.ProcessBatch(Batch{Leaves: []keytree.MemberID{3}})
			if err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Rekeys != 2 {
				t.Errorf("rekeys = %d, want 2", st.Rekeys)
			}
			if st.KeysEncrypted == 0 {
				t.Error("keys encrypted = 0 after join+leave batches")
			}
			if r.TotalKeyCount() == 0 {
				t.Error("leave batch emitted no keys")
			}
			total := 0
			for _, p := range st.Partitions {
				if p.Label == "" {
					t.Errorf("unnamed partition: %+v", p)
				}
				total += p.Size
			}
			if total != s.Size() {
				t.Errorf("partition sizes sum to %d, scheme size %d", total, s.Size())
			}
		})
	}
}

func TestStatsCountsRotation(t *testing.T) {
	s, err := NewTwoPartition(TT, 2, WithRand(keycrypt.NewDeterministicReader(7)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProcessBatch(joinN(1, 4)); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if _, err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Rekeys != before.Rekeys+1 {
		t.Errorf("rotation not counted: %d -> %d", before.Rekeys, after.Rekeys)
	}
	if after.KeysEncrypted != before.KeysEncrypted+1 {
		t.Errorf("rotation keys: %d -> %d, want +1", before.KeysEncrypted, after.KeysEncrypted)
	}
}

func TestStatsPartitionLabels(t *testing.T) {
	s, err := NewTwoPartition(TT, 10, WithRand(keycrypt.NewDeterministicReader(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProcessBatch(joinN(1, 5)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Partitions) != 2 || st.Partitions[0].Label != "s" || st.Partitions[1].Label != "l" {
		t.Fatalf("two-partition labels wrong: %+v", st.Partitions)
	}
	if st.Partitions[0].Size != 5 || st.Partitions[1].Size != 0 {
		t.Fatalf("fresh joiners should sit in S: %+v", st.Partitions)
	}

	mt, err := NewLossHomogenized([]float64{0.05}, WithRand(keycrypt.NewDeterministicReader(1)))
	if err != nil {
		t.Fatal(err)
	}
	b := Batch{Joins: []Join{
		{ID: 1, Meta: MemberMeta{LossRate: 0.01}},
		{ID: 2, Meta: MemberMeta{LossRate: 0.2}},
	}}
	if _, err := mt.ProcessBatch(b); err != nil {
		t.Fatal(err)
	}
	st = mt.Stats()
	if len(st.Partitions) != 2 || st.Partitions[0].Label != "tree-0" || st.Partitions[1].Label != "tree-1" {
		t.Fatalf("multi-tree labels wrong: %+v", st.Partitions)
	}
	if st.Partitions[0].Size != 1 || st.Partitions[1].Size != 1 {
		t.Fatalf("loss classes misrouted: %+v", st.Partitions)
	}
}
