package core

import (
	"errors"
	"testing"
)

func TestOneTreeSnapshotRestartContinuity(t *testing.T) {
	// A key-server restart: snapshot mid-session, restore, keep rekeying.
	// Members that lived through the restart must follow payloads from the
	// restored scheme seamlessly.
	s, err := NewOneTree(rnd(400))
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, s)
	h.process(Batch{Joins: joins(MemberMeta{}, 1, 2, 3, 4, 5, 6, 7, 8)})
	h.process(Batch{Leaves: leaves(3)})

	blob, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := RestoreOneTree(blob, rnd(401))
	if err != nil {
		t.Fatalf("RestoreOneTree: %v", err)
	}
	if restored.Size() != s.Size() {
		t.Fatalf("restored size %d, want %d", restored.Size(), s.Size())
	}
	wantDEK, _ := s.GroupKey()
	gotDEK, err := restored.GroupKey()
	if err != nil || !gotDEK.Equal(wantDEK) {
		t.Fatal("group key lost across restart")
	}

	// The restored server processes the next batch; pre-restart clients
	// follow, and epochs continue monotonically.
	r, err := restored.ProcessBatch(Batch{Joins: joins(MemberMeta{}, 20), Leaves: leaves(5)})
	if err != nil {
		t.Fatalf("ProcessBatch after restore: %v", err)
	}
	if r.Epoch != 3 {
		t.Fatalf("epoch %d after restart, want 3 (continuing from 2)", r.Epoch)
	}
	newDEK, _ := restored.GroupKey()
	for id, c := range h.clients {
		if id == 5 {
			continue
		}
		c.Apply(r.AllItems())
		if !c.Has(newDEK) {
			t.Fatalf("member %d lost the group across the restart", id)
		}
	}
}

func TestRestoreOneTreeRejectsGarbage(t *testing.T) {
	if _, err := RestoreOneTree([]byte("nope")); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err=%v, want ErrBadSnapshot", err)
	}
	if _, err := RestoreOneTree(append([]byte("GKS1"), make([]byte, 12)...)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupt tree: err=%v, want ErrBadSnapshot", err)
	}
}
