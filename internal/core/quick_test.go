package core

import (
	"testing"
	"testing/quick"

	"groupkey/internal/keycrypt"
	"groupkey/internal/keytree"
)

// TestSchemesQuickRandomChurn is the property-based companion to the soak
// test: for arbitrary (seed, shape) inputs, every scheme must preserve the
// membership invariant, keep partitions consistent, and pass the full
// cryptographic contract enforced by the harness.
func TestSchemesQuickRandomChurn(t *testing.T) {
	type shape struct {
		Seed   uint64
		Mode   uint8 // scheme selector
		Epochs uint8
	}
	run := func(s shape) bool {
		var scheme Scheme
		var err error
		opt := WithRand(keycrypt.NewDeterministicReader(s.Seed))
		switch s.Mode % 5 {
		case 0:
			scheme, err = NewOneTree(opt)
		case 1:
			scheme, err = NewTwoPartition(QT, int(s.Mode%4), opt)
		case 2:
			scheme, err = NewTwoPartition(TT, int(s.Mode%4), opt)
		case 3:
			scheme, err = NewTwoPartition(PT, 3, opt)
		case 4:
			scheme, err = NewLossHomogenized([]float64{0.05}, opt)
		}
		if err != nil {
			return false
		}
		h := newHarness(t, scheme)
		rng := keycrypt.NewDeterministicReader(s.Seed ^ 0xfeed)
		rb := func(n int) int {
			var b [1]byte
			rng.Read(b[:])
			return int(b[0]) % n
		}
		next := 1
		var present []int
		epochs := int(s.Epochs%12) + 3
		for e := 0; e < epochs; e++ {
			b := Batch{}
			for i := 0; i < rb(6); i++ {
				b.Joins = append(b.Joins, Join{
					ID:   keytree.MemberID(next),
					Meta: MemberMeta{LossRate: []float64{0.02, 0.2}[rb(2)], LongLived: rb(2) == 0},
				})
				present = append(present, next)
				next++
			}
			for i := 0; i < rb(4) && len(present) > len(b.Joins); i++ {
				idx := rb(len(present))
				id := keytree.MemberID(present[idx])
				conflict := false
				for _, j := range b.Joins {
					if j.ID == id {
						conflict = true
						break
					}
				}
				for _, l := range b.Leaves {
					if l == id {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
				b.Leaves = append(b.Leaves, id)
				present = append(present[:idx], present[idx+1:]...)
			}
			h.process(b) // harness Fatals on any contract violation
			if scheme.Size() != len(present) {
				return false
			}
			if tp, ok := scheme.(*TwoPartition); ok {
				if tp.SPartitionSize()+tp.LPartitionSize() != tp.Size() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
