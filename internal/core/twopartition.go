package core

import (
	"fmt"

	"groupkey/internal/keycrypt"
	"groupkey/internal/keytree"
)

// PartitionMode selects the two-partition construction (Section 3.2).
type PartitionMode int

const (
	// QT keeps the S-partition as a linear queue: a joiner needs only the
	// group key, but every queue resident must be rekeyed individually on
	// a departure. Wins when the S-partition is small.
	QT PartitionMode = iota + 1
	// TT keeps both partitions as balanced key trees. Wins when the
	// S-partition is large.
	TT
	// PT is the oracle construction: member classes are known at join time
	// (as in Selcuk et al.), members are placed directly in the right
	// partition and never migrate. It upper-bounds the achievable gain.
	PT
)

// String implements fmt.Stringer.
func (m PartitionMode) String() string {
	switch m {
	case QT:
		return "qt"
	case TT:
		return "tt"
	case PT:
		return "pt"
	default:
		return fmt.Sprintf("PartitionMode(%d)", int(m))
	}
}

// Key ID space bases keep every key-holder's ID unique across partitions.
const (
	dekKeyID       keycrypt.KeyID = 1
	queueKeyIDBase keycrypt.KeyID = 1 << 40
	sTreeKeyIDBase keycrypt.KeyID = 1 << 41
	lTreeKeyIDBase keycrypt.KeyID = 1 << 42
)

// TwoPartition implements the Section 3 optimization: a short-term
// S-partition and a long-term L-partition beneath a shared group key.
// Joiners enter S; members surviving SPeriodK rekey periods migrate to L in
// the same batch that processes the period's departures.
type TwoPartition struct {
	mode    PartitionMode
	degree  int
	sPeriod uint64 // K: periods a member must survive in S before migrating
	gen     keycrypt.Generator
	dek     keycrypt.Key
	epoch   uint64

	// S-partition state. QT uses queue (individual keys); TT and PT use
	// stree. joinEpoch drives migration (unused in PT).
	queue       map[keytree.MemberID]keycrypt.Key
	stree       *keytree.Tree
	joinEpoch   map[keytree.MemberID]uint64
	nextQueueID keycrypt.KeyID

	ltree *keytree.Tree

	// parallel allows the S and L trees to rekey concurrently (only when
	// entropy comes from crypto/rand; see WithRekeyWorkers).
	parallel bool

	statCounters
}

var _ Scheme = (*TwoPartition)(nil)

// NewTwoPartition builds the scheme. sPeriodK is the S-period measured in
// rekey periods (the paper's K = Ts/Tp); with K = 0 the scheme degenerates
// to the one-keytree organization (all joins go straight to L).
func NewTwoPartition(mode PartitionMode, sPeriodK int, opts ...Option) (*TwoPartition, error) {
	if mode != QT && mode != TT && mode != PT {
		return nil, fmt.Errorf("%w: mode=%v", ErrBadConfig, mode)
	}
	if sPeriodK < 0 {
		return nil, fmt.Errorf("%w: sPeriodK=%d", ErrBadConfig, sPeriodK)
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	s := &TwoPartition{
		mode:        mode,
		degree:      o.degree,
		sPeriod:     uint64(sPeriodK),
		gen:         keycrypt.Generator{Rand: o.rand},
		queue:       make(map[keytree.MemberID]keycrypt.Key),
		joinEpoch:   make(map[keytree.MemberID]uint64),
		nextQueueID: o.keyIDBase + queueKeyIDBase,
		parallel:    o.treeConcurrency(),
	}
	dek, err := s.gen.New(o.keyIDBase+dekKeyID, 0)
	if err != nil {
		return nil, err
	}
	s.dek = dek
	if mode != QT {
		s.stree, err = keytree.New(o.degree, o.treeOptions(o.keyIDBase+sTreeKeyIDBase)...)
		if err != nil {
			return nil, err
		}
	}
	s.ltree, err = keytree.New(o.degree, o.treeOptions(o.keyIDBase+lTreeKeyIDBase)...)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Name implements Scheme.
func (s *TwoPartition) Name() string { return fmt.Sprintf("two-partition-%s", s.mode) }

// Mode returns the construction in use.
func (s *TwoPartition) Mode() PartitionMode { return s.mode }

// SetSPeriod updates K, the number of rekey periods a member must survive
// in S before migrating to L, for subsequent batches; members already in
// S migrate under the new K at the next batch. Like the planner's churn
// hint this changes payload-affecting decisions, so durable deployments
// must only set it through configuration that replays with the log.
// Negative values are ignored.
func (s *TwoPartition) SetSPeriod(k int) {
	if k < 0 {
		return
	}
	s.sPeriod = uint64(k)
}

// SPartitionSize returns the current number of members in the S-partition.
func (s *TwoPartition) SPartitionSize() int {
	if s.mode == QT {
		return len(s.queue)
	}
	return s.stree.Size()
}

// LPartitionSize returns the current number of members in the L-partition.
func (s *TwoPartition) LPartitionSize() int { return s.ltree.Size() }

// inS reports whether m currently resides in the S-partition.
func (s *TwoPartition) inS(m keytree.MemberID) bool {
	if s.mode == QT {
		_, ok := s.queue[m]
		return ok
	}
	return s.stree.Contains(m)
}

// ProcessBatch implements Scheme. One batch performs, in order: departures
// from both partitions, migration of S members that survived the S-period,
// admission of joiners, and the group-key update (skipped when the batch
// contains neither joins nor departures — pure migration does not
// compromise any key, Section 3.2 phase 3).
func (s *TwoPartition) ProcessBatch(b Batch) (*Rekey, error) {
	if err := validateBatch(s, b); err != nil {
		return nil, err
	}
	s.epoch++
	r := &Rekey{Epoch: s.epoch, Welcome: make(map[keytree.MemberID]keycrypt.Key, len(b.Joins))}

	leaving := make(map[keytree.MemberID]bool, len(b.Leaves))
	var sLeaves, lLeaves []keytree.MemberID
	for _, m := range b.Leaves {
		leaving[m] = true
		if s.inS(m) {
			sLeaves = append(sLeaves, m)
		} else {
			lLeaves = append(lLeaves, m)
		}
	}

	// Migration set: S members that survived the S-period and are not
	// leaving right now. PT never migrates.
	var migrants []keytree.MemberID
	if s.mode != PT {
		for _, m := range sortedMembers(s.joinEpoch) {
			if !leaving[m] && s.epoch-s.joinEpoch[m] >= s.sPeriod {
				migrants = append(migrants, m)
			}
		}
	}

	// Route joiners. K=0 degenerates to one tree: everything goes to L.
	var sJoins, lJoins []keytree.MemberID
	for _, j := range b.Joins {
		switch {
		case s.mode == PT && j.Meta.LongLived:
			lJoins = append(lJoins, j.ID)
		case s.mode != PT && s.sPeriod == 0:
			lJoins = append(lJoins, j.ID)
		default:
			sJoins = append(sJoins, j.ID)
			s.joinEpoch[j.ID] = s.epoch
		}
	}

	// Capture migrants' current individual keys before the S departure
	// procedure destroys them: their new L leaf keys are delivered wrapped
	// under these.
	migrantOldKey := make(map[keytree.MemberID]keycrypt.Key, len(migrants))
	for _, m := range migrants {
		k, err := s.individualKeyInS(m)
		if err != nil {
			return nil, err
		}
		migrantOldKey[m] = k
	}

	// --- S-partition ---
	sStream := Stream{Label: "s-partition"}
	lkb := keytree.Batch{Joins: append(append([]keytree.MemberID{}, migrants...), lJoins...), Leaves: lLeaves}
	var lPayload *keytree.Payload
	switch s.mode {
	case QT:
		for _, m := range append(append([]keytree.MemberID{}, sLeaves...), migrants...) {
			delete(s.queue, m)
			delete(s.joinEpoch, m)
		}
		for _, m := range sJoins {
			ik, err := s.gen.New(s.nextQueueID, 0)
			if err != nil {
				return nil, err
			}
			s.nextQueueID++
			s.queue[m] = ik
			r.Welcome[m] = ik
		}
		if !lkb.IsEmpty() {
			p, err := s.ltree.Rekey(lkb)
			if err != nil {
				return nil, err
			}
			lPayload = p
		}
	default: // TT, PT
		kb := keytree.Batch{Joins: sJoins, Leaves: append(append([]keytree.MemberID{}, sLeaves...), migrants...)}
		// S and L are disjoint key hierarchies with disjoint ID spaces, so
		// their rekeys can run concurrently when the entropy source allows.
		ps, err := rekeyTrees(s.parallel, []rekeyOne{
			{tree: s.stree, batch: kb},
			{tree: s.ltree, batch: lkb},
		})
		if err != nil {
			return nil, err
		}
		if ps[0] != nil {
			sStream.Items = ps[0].Items
			sStream.JoinerItems = ps[0].JoinerItems
		}
		lPayload = ps[1]
		for _, m := range append(append([]keytree.MemberID{}, sLeaves...), migrants...) {
			delete(s.joinEpoch, m)
		}
		for _, m := range sJoins {
			leaf, err := s.stree.Leaf(m)
			if err != nil {
				return nil, err
			}
			r.Welcome[m] = leaf.Key()
		}
	}

	// --- L-partition ---
	lStream := Stream{Label: "l-partition"}
	if lPayload != nil {
		lStream.Items = lPayload.Items
		lStream.JoinerItems = lPayload.JoinerItems
	}
	for _, m := range lJoins {
		leaf, err := s.ltree.Leaf(m)
		if err != nil {
			return nil, err
		}
		r.Welcome[m] = leaf.Key()
	}
	// Hand each migrant its new L leaf key under its old S individual key.
	for _, m := range migrants {
		leaf, err := s.ltree.Leaf(m)
		if err != nil {
			return nil, err
		}
		w, err := keycrypt.Wrap(leaf.Key(), migrantOldKey[m], s.gen.Rand)
		if err != nil {
			return nil, err
		}
		lStream.JoinerItems = append(lStream.JoinerItems, keytree.Item{
			Wrapped:   w,
			Kind:      keytree.JoinerWrap,
			Level:     leaf.Depth(),
			Receivers: []keytree.MemberID{m},
		})
	}

	// --- Group key ---
	joiners := excludeSet(b.Joins)
	groupStream := Stream{Label: "group"}
	switch {
	case len(b.Leaves) > 0:
		// Departures compromise the group key: refresh it and deliver the
		// new one per partition, never under its own previous version.
		newDEK, err := s.gen.Refresh(s.dek)
		if err != nil {
			return nil, err
		}
		s.dek = newDEK
		// S-partition delivery.
		if s.mode == QT {
			for _, m := range sortedMembers(s.queue) {
				w, err := keycrypt.Wrap(newDEK, s.queue[m], s.gen.Rand)
				if err != nil {
					return nil, err
				}
				item := keytree.Item{Wrapped: w, Kind: keytree.ChildWrap, Level: 0, Receivers: []keytree.MemberID{m}}
				if joiners[m] {
					sStream.JoinerItems = append(sStream.JoinerItems, item)
				} else {
					sStream.Items = append(sStream.Items, item)
				}
			}
		} else if s.stree.Size() > 0 {
			root, err := s.stree.RootKey()
			if err != nil {
				return nil, err
			}
			w, err := keycrypt.Wrap(newDEK, root, s.gen.Rand)
			if err != nil {
				return nil, err
			}
			sStream.Items = append(sStream.Items, keytree.Item{
				Wrapped: w, Kind: keytree.ChildWrap, Level: 0,
				Receivers: subtract(s.stree.Members(), joiners),
			})
			for _, m := range sJoins {
				wj, err := keycrypt.Wrap(newDEK, r.Welcome[m], s.gen.Rand)
				if err != nil {
					return nil, err
				}
				sStream.JoinerItems = append(sStream.JoinerItems, keytree.Item{
					Wrapped: wj, Kind: keytree.JoinerWrap, Level: 0,
					Receivers: []keytree.MemberID{m},
				})
			}
		}
		// L-partition delivery (migrants decrypt via their fresh L path).
		if s.ltree.Size() > 0 {
			root, err := s.ltree.RootKey()
			if err != nil {
				return nil, err
			}
			w, err := keycrypt.Wrap(newDEK, root, s.gen.Rand)
			if err != nil {
				return nil, err
			}
			lStream.Items = append(lStream.Items, keytree.Item{
				Wrapped: w, Kind: keytree.ChildWrap, Level: 0,
				Receivers: subtract(s.ltree.Members(), joiners),
			})
			for _, m := range lJoins {
				wj, err := keycrypt.Wrap(newDEK, r.Welcome[m], s.gen.Rand)
				if err != nil {
					return nil, err
				}
				lStream.JoinerItems = append(lStream.JoinerItems, keytree.Item{
					Wrapped: wj, Kind: keytree.JoinerWrap, Level: 0,
					Receivers: []keytree.MemberID{m},
				})
			}
		}
	case len(b.Joins) > 0:
		// Joins only: backward confidentiality needs a fresh group key, but
		// one wrap under the previous group key reaches every old member.
		oldDEK := s.dek
		newDEK, err := s.gen.Refresh(s.dek)
		if err != nil {
			return nil, err
		}
		s.dek = newDEK
		w, err := keycrypt.Wrap(newDEK, oldDEK, s.gen.Rand)
		if err != nil {
			return nil, err
		}
		groupStream.Items = append(groupStream.Items, keytree.Item{
			Wrapped: w, Kind: keytree.OldKeyWrap, Level: 0,
			Receivers: subtract(s.Members(), joiners),
		})
		for _, j := range b.Joins {
			wj, err := keycrypt.Wrap(newDEK, r.Welcome[j.ID], s.gen.Rand)
			if err != nil {
				return nil, err
			}
			groupStream.JoinerItems = append(groupStream.JoinerItems, keytree.Item{
				Wrapped: wj, Kind: keytree.JoinerWrap, Level: 0,
				Receivers: []keytree.MemberID{j.ID},
			})
		}
	}

	if s.mode == QT {
		sStream.Audience = sortedMembers(s.queue)
	} else {
		sStream.Audience = s.stree.Members()
	}
	lStream.Audience = s.ltree.Members()
	groupStream.Audience = s.Members()
	for _, st := range []Stream{sStream, lStream, groupStream} {
		if len(st.Items) > 0 || len(st.JoinerItems) > 0 {
			r.Streams = append(r.Streams, st)
		}
	}
	s.note(r)
	return r, nil
}

// individualKeyInS returns the member's current S-partition individual key.
func (s *TwoPartition) individualKeyInS(m keytree.MemberID) (keycrypt.Key, error) {
	if s.mode == QT {
		k, ok := s.queue[m]
		if !ok {
			return keycrypt.Key{}, fmt.Errorf("%w: %d not in queue", ErrMemberUnknown, m)
		}
		return k, nil
	}
	leaf, err := s.stree.Leaf(m)
	if err != nil {
		return keycrypt.Key{}, fmt.Errorf("%w: %d not in S tree", ErrMemberUnknown, m)
	}
	return leaf.Key(), nil
}

// GroupKey implements Scheme.
func (s *TwoPartition) GroupKey() (keycrypt.Key, error) {
	if s.Size() == 0 {
		return keycrypt.Key{}, ErrEmptyGroup
	}
	return s.dek, nil
}

// MemberKeys implements Scheme.
func (s *TwoPartition) MemberKeys(m keytree.MemberID) ([]keycrypt.Key, error) {
	if s.mode == QT {
		if k, ok := s.queue[m]; ok {
			return []keycrypt.Key{k, s.dek}, nil
		}
	} else if s.stree.Contains(m) {
		path, err := s.stree.Path(m)
		if err != nil {
			return nil, err
		}
		return append(path, s.dek), nil
	}
	if s.ltree.Contains(m) {
		path, err := s.ltree.Path(m)
		if err != nil {
			return nil, err
		}
		return append(path, s.dek), nil
	}
	return nil, fmt.Errorf("%w: %d", ErrMemberUnknown, m)
}

// Contains implements Scheme.
func (s *TwoPartition) Contains(m keytree.MemberID) bool {
	return s.inS(m) || s.ltree.Contains(m)
}

// Size implements Scheme.
func (s *TwoPartition) Size() int { return s.SPartitionSize() + s.ltree.Size() }

// Stats implements Scheme.
func (s *TwoPartition) Stats() SchemeStats {
	st := s.stats(
		PartitionStat{Label: "s", Size: s.SPartitionSize()},
		PartitionStat{Label: "l", Size: s.LPartitionSize()},
	)
	st.Planner = s.ltree.PlannerStats()
	if s.stree != nil {
		st.Planner = st.Planner.Add(s.stree.PlannerStats())
	}
	return st
}

// TunePlanner implements PlannerTuner.
func (s *TwoPartition) TunePlanner(churnHint int) {
	s.ltree.TunePlanner(churnHint)
	if s.stree != nil {
		s.stree.TunePlanner(churnHint)
	}
}

// Members implements Scheme.
func (s *TwoPartition) Members() []keytree.MemberID {
	set := make(map[keytree.MemberID]bool, s.Size())
	if s.mode == QT {
		for m := range s.queue {
			set[m] = true
		}
	} else {
		for _, m := range s.stree.Members() {
			set[m] = true
		}
	}
	for _, m := range s.ltree.Members() {
		set[m] = true
	}
	return sortedMembers(set)
}
