package core

import "groupkey/internal/keytree"

// Observability: every Scheme exports cumulative rekey counters and its
// current partition layout through Stats(). The server mirrors these into
// internal/metrics gauges (one per partition label), which is how the
// paper's S/L partition sizes and per-scheme encryption counts become live
// time series instead of offline recomputations.

// PartitionStat is the current size of one partition or key tree.
type PartitionStat struct {
	// Label names the partition ("s"/"l" for two-partition schemes,
	// "tree-N" for multi-tree schemes, "group" for single-structure ones).
	Label string
	// Size is the partition's current membership.
	Size int
}

// SchemeStats is a scheme's observability snapshot.
type SchemeStats struct {
	// Rekeys counts payload-producing operations since creation: batches
	// processed (empty ones included — the epoch still advances) plus
	// scheduled rotations.
	Rekeys uint64
	// KeysEncrypted is the cumulative number of encrypted keys emitted
	// across those payloads, multicast and joiner items both — the
	// paper's rekeying-cost metric, integrated over the scheme's life.
	KeysEncrypted uint64
	// Partitions is the current partition layout, in a stable order.
	Partitions []PartitionStat
	// Planner aggregates batch-placement-planner counters across the
	// scheme's trees (zero value when the planner is disabled).
	Planner keytree.PlannerStats
}

// statCounters accumulates the cumulative half of SchemeStats. Schemes
// embed it and note every payload they emit; like the rest of a Scheme it
// is not concurrency-safe (the server serializes batches).
type statCounters struct {
	rekeys        uint64
	keysEncrypted uint64
}

// note records one emitted payload.
func (c *statCounters) note(r *Rekey) {
	c.rekeys++
	c.keysEncrypted += uint64(r.TotalKeyCount())
}

// stats assembles a SchemeStats around the counters.
func (c *statCounters) stats(partitions ...PartitionStat) SchemeStats {
	return SchemeStats{
		Rekeys:        c.rekeys,
		KeysEncrypted: c.keysEncrypted,
		Partitions:    partitions,
	}
}
