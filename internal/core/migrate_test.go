package core

import (
	"errors"
	"testing"

	"groupkey/internal/keycrypt"
	"groupkey/internal/keytree"
	"groupkey/internal/member"
)

func TestMigrateOneTreeToTwoPartition(t *testing.T) {
	// Run a group on one-keytree, then switch to TT mid-session: every
	// member must reach the new group key using only keys it already has.
	from, err := NewOneTree(rnd(200))
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, from)
	h.process(Batch{Joins: joins(MemberMeta{}, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)})
	h.process(Batch{Leaves: leaves(4)})

	to, err := NewTwoPartition(TT, 5, rnd(201), WithKeyIDBase(1<<50))
	if err != nil {
		t.Fatal(err)
	}
	rekey, err := Migrate(from, to, nil, rnd(202))
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if rekey.Welcome != nil {
		t.Fatal("migration must not use the registration channel")
	}
	if to.Size() != from.Size() {
		t.Fatalf("destination size %d, want %d", to.Size(), from.Size())
	}

	// Replay the migration through the existing clients.
	items := rekey.AllItems()
	newDEK, err := to.GroupKey()
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range h.clients {
		c.Apply(items)
		want, err := to.MemberKeys(id)
		if err != nil {
			t.Fatalf("MemberKeys(%d): %v", id, err)
		}
		for _, k := range want {
			if !c.Has(k) {
				t.Fatalf("member %d missing key %v after migration", id, k)
			}
		}
		if !c.Has(newDEK) {
			t.Fatalf("member %d lacks the new group key", id)
		}
	}

	// An outsider holding a key the scheme never issued learns nothing.
	outsider := member.New(4, keycrypt.Random(99999, 0))
	if n := outsider.Apply(items); n != 0 {
		t.Fatalf("outsider decrypted %d migration items", n)
	}
}

func TestMigratePreservesMeta(t *testing.T) {
	from, err := NewOneTree(rnd(203))
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, from)
	h.process(Batch{Joins: []Join{
		{ID: 1, Meta: MemberMeta{LossRate: 0.02}},
		{ID: 2, Meta: MemberMeta{LossRate: 0.2}},
		{ID: 3, Meta: MemberMeta{LossRate: 0.03}},
	}})

	to, err := NewLossHomogenized([]float64{0.05}, rnd(204), WithKeyIDBase(1<<50))
	if err != nil {
		t.Fatal(err)
	}
	metas := map[keytree.MemberID]MemberMeta{
		1: {LossRate: 0.02}, 2: {LossRate: 0.2}, 3: {LossRate: 0.03},
	}
	if _, err := Migrate(from, to, func(m keytree.MemberID) MemberMeta { return metas[m] }, rnd(205)); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	for id, want := range map[keytree.MemberID]int{1: 0, 2: 1, 3: 0} {
		got, err := to.TreeOf(id)
		if err != nil {
			t.Fatalf("TreeOf(%d): %v", id, err)
		}
		if got != want {
			t.Errorf("member %d landed in tree %d, want %d", id, got, want)
		}
	}
}

func TestMigrateValidation(t *testing.T) {
	a, _ := NewOneTree(rnd(206))
	b, _ := NewOneTree(rnd(207))
	if _, err := Migrate(a, b, nil); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("empty source: err=%v", err)
	}
	ha := newHarness(t, a)
	ha.process(Batch{Joins: joins(MemberMeta{}, 1, 2)})
	hb := newHarness(t, b)
	hb.process(Batch{Joins: joins(MemberMeta{}, 9)})
	if _, err := Migrate(a, b, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("non-empty destination: err=%v", err)
	}
}
