package core

import (
	"bytes"
	"testing"
)

// TestSchemeSnapshotRoundTrip proves the durability contract for every
// scheme: Snapshot → RestoreScheme reproduces the exact key material and
// membership structure (byte-identical re-snapshot), and the restored
// scheme continues rekeying seamlessly for members that lived through the
// restart.
func TestSchemeSnapshotRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		build func(seed uint64) (Scheme, error)
	}{
		{"onetree", func(seed uint64) (Scheme, error) { return NewOneTree(rnd(seed)) }},
		{"naive", func(seed uint64) (Scheme, error) { return NewNaive(rnd(seed)) }},
		{"qt", func(seed uint64) (Scheme, error) { return NewTwoPartition(QT, 1, rnd(seed)) }},
		{"tt", func(seed uint64) (Scheme, error) { return NewTwoPartition(TT, 2, rnd(seed)) }},
		{"pt", func(seed uint64) (Scheme, error) { return NewTwoPartition(PT, 2, rnd(seed)) }},
		{"losshomog", func(seed uint64) (Scheme, error) {
			return NewLossHomogenized([]float64{0.01, 0.05}, rnd(seed))
		}},
		{"randommulti", func(seed uint64) (Scheme, error) { return NewRandomMultiTree(3, rnd(seed)) }},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := uint64(7000 + 10*i)
			s, err := tc.build(seed)
			if err != nil {
				t.Fatal(err)
			}
			h := newHarness(t, s)
			h.process(Batch{Joins: joins(MemberMeta{LossRate: 0.002}, 1, 2, 3)})
			h.process(Batch{Joins: joins(MemberMeta{LossRate: 0.2, LongLived: true}, 4, 5, 6)})
			// Heartbeat: advances migration clocks without membership change.
			h.process(Batch{})
			h.process(Batch{Joins: joins(MemberMeta{LossRate: -1}, 7, 8), Leaves: leaves(2)})

			blob, err := s.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			restored, err := RestoreScheme(blob, rnd(seed+1))
			if err != nil {
				t.Fatalf("RestoreScheme: %v", err)
			}
			if restored.Name() != s.Name() {
				t.Fatalf("restored name %q, want %q", restored.Name(), s.Name())
			}
			if restored.Size() != s.Size() {
				t.Fatalf("restored size %d, want %d", restored.Size(), s.Size())
			}
			wantDEK, err := s.GroupKey()
			if err != nil {
				t.Fatal(err)
			}
			gotDEK, err := restored.GroupKey()
			if err != nil || !gotDEK.Equal(wantDEK) {
				t.Fatalf("group key lost across restore (err=%v)", err)
			}
			for _, m := range s.Members() {
				want, err := s.MemberKeys(m)
				if err != nil {
					t.Fatal(err)
				}
				got, err := restored.MemberKeys(m)
				if err != nil {
					t.Fatalf("restored MemberKeys(%d): %v", m, err)
				}
				if len(got) != len(want) {
					t.Fatalf("member %d: %d keys restored, want %d", m, len(got), len(want))
				}
				for j := range want {
					if !got[j].Equal(want[j]) {
						t.Fatalf("member %d key %d differs after restore", m, j)
					}
				}
			}

			// The canonical encoding makes restore⟳snapshot the identity.
			blob2, err := restored.Snapshot()
			if err != nil {
				t.Fatalf("re-Snapshot: %v", err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("re-snapshot differs: %d vs %d bytes", len(blob2), len(blob))
			}

			// Continuity: the restored server rekeys, pre-restart clients
			// follow. The harness's clients were built against s; point a new
			// harness at restored but reuse the client key stores.
			h2 := &harness{t: t, s: restored, clients: h.clients}
			r := h2.process(Batch{Joins: joins(MemberMeta{LossRate: 0.003}, 20), Leaves: leaves(5)})
			if r.Epoch != 5 {
				t.Fatalf("epoch %d after restore, want 5 (continuing from 4)", r.Epoch)
			}
		})
	}
}

// TestRestoreSchemeRejectsGarbage exercises the dispatcher's failure
// paths.
func TestRestoreSchemeRejectsGarbage(t *testing.T) {
	if _, err := RestoreScheme(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := RestoreScheme([]byte("XXXX rest")); err == nil {
		t.Fatal("unknown magic accepted")
	}
	s, err := NewNaive(rnd(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProcessBatch(Batch{Joins: joins(MemberMeta{}, 1, 2)}); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreScheme(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := RestoreScheme(append(blob, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// FuzzRestore hammers RestoreScheme with mutated snapshots of every
// scheme: it must never panic, and anything it does accept must
// re-snapshot to a blob it accepts again (one-step normalization).
func FuzzRestore(f *testing.F) {
	builds := []func() (Scheme, error){
		func() (Scheme, error) { return NewOneTree(rnd(41)) },
		func() (Scheme, error) { return NewNaive(rnd(42)) },
		func() (Scheme, error) { return NewTwoPartition(TT, 2, rnd(43)) },
		func() (Scheme, error) { return NewTwoPartition(QT, 1, rnd(44)) },
		func() (Scheme, error) { return NewLossHomogenized([]float64{0.05}, rnd(45)) },
		func() (Scheme, error) { return NewRandomMultiTree(2, rnd(46)) },
	}
	for _, build := range builds {
		s, err := build()
		if err != nil {
			f.Fatal(err)
		}
		if _, err := s.ProcessBatch(Batch{Joins: joins(MemberMeta{LossRate: 0.01}, 1, 2, 3)}); err != nil {
			f.Fatal(err)
		}
		if _, err := s.ProcessBatch(Batch{Leaves: leaves(2)}); err != nil {
			f.Fatal(err)
		}
		blob, err := s.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := RestoreScheme(data, rnd(99))
		if err != nil {
			return
		}
		blob, err := s.Snapshot()
		if err != nil {
			t.Fatalf("accepted snapshot cannot re-snapshot: %v", err)
		}
		if _, err := RestoreScheme(blob, rnd(100)); err != nil {
			t.Fatalf("re-snapshot of accepted input rejected: %v", err)
		}
	})
}
