package keytree

import (
	"bytes"
	"fmt"

	"groupkey/internal/keycrypt"
)

// OFT snapshots mirror the LKH tree snapshots (snapshot.go): full server
// state for crash recovery, secrets included — encrypt at rest.

const oftSnapMagic = "OFTT"

// Snapshot serializes the one-way function tree.
func (t *OFT) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(oftSnapMagic)
	writeU32(&buf, snapVersion)
	writeU64(&buf, uint64(t.nextID))
	for _, v := range []int{t.stats.Joins, t.stats.Departures, t.stats.KeysWrapped, t.stats.KeysRefreshed, t.stats.Rekeys} {
		writeU64(&buf, uint64(v))
	}
	if t.root == nil {
		writeU32(&buf, 0)
		return buf.Bytes(), nil
	}
	writeU32(&buf, 1)
	var write func(n *oftNode)
	write = func(n *oftNode) {
		writeU64(&buf, uint64(n.id))
		writeU64(&buf, uint64(n.secret.ID))
		writeU32(&buf, uint32(n.secret.Version))
		buf.Write(n.secret.Bytes())
		writeU64(&buf, uint64(n.member))
		if n.isLeaf() {
			buf.WriteByte(0)
			return
		}
		buf.WriteByte(2)
		write(n.left)
		write(n.right)
	}
	write(t.root)
	return buf.Bytes(), nil
}

// RestoreOFT rebuilds an OFT from a snapshot and verifies internal
// consistency: every interior secret must equal the Mix of its children's
// blinds, so a corrupted snapshot cannot smuggle in an inconsistent tree.
func RestoreOFT(snapshot []byte, opts ...Option) (*OFT, error) {
	r := &snapReader{data: snapshot}
	if string(r.bytes(4)) != oftSnapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := r.u32(); v != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, v)
	}
	t, err := NewOFT(opts...)
	if err != nil {
		return nil, err
	}
	t.nextID = keycrypt.KeyID(r.u64())
	t.stats.Joins = int(r.u64())
	t.stats.Departures = int(r.u64())
	t.stats.KeysWrapped = int(r.u64())
	t.stats.KeysRefreshed = int(r.u64())
	t.stats.Rekeys = int(r.u64())
	hasRoot := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	if hasRoot == 0 {
		return t, nil
	}
	var read func(depth int) (*oftNode, error)
	read = func(depth int) (*oftNode, error) {
		if depth > 64 {
			return nil, fmt.Errorf("%w: tree deeper than 64 levels", ErrBadSnapshot)
		}
		id := keycrypt.KeyID(r.u64())
		secretID := keycrypt.KeyID(r.u64())
		version := keycrypt.Version(r.u32())
		material := r.bytes(keycrypt.KeySize)
		memberID := MemberID(r.u64())
		kids := int(r.u8())
		if r.err != nil {
			return nil, fmt.Errorf("%w: truncated node", ErrBadSnapshot)
		}
		secret, err := keycrypt.NewKey(secretID, version, material)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		n := &oftNode{id: id, secret: secret, member: memberID}
		switch kids {
		case 0:
			if memberID == 0 {
				return nil, fmt.Errorf("%w: leaf without member", ErrBadSnapshot)
			}
			if _, dup := t.leaves[memberID]; dup {
				return nil, fmt.Errorf("%w: duplicate member %d", ErrBadSnapshot, memberID)
			}
			n.leaves = 1
			t.leaves[memberID] = n
			return n, nil
		case 2:
			if memberID != 0 {
				return nil, fmt.Errorf("%w: interior node carries member %d", ErrBadSnapshot, memberID)
			}
			l, err := read(depth + 1)
			if err != nil {
				return nil, err
			}
			rn, err := read(depth + 1)
			if err != nil {
				return nil, err
			}
			l.parent, rn.parent = n, n
			n.left, n.right = l, rn
			n.leaves = l.leaves + rn.leaves
			// Verify the OFT invariant: the interior secret is derivable.
			want := keycrypt.Mix(n.id, l.secret.Version+rn.secret.Version,
				keycrypt.Blind(l.secret), keycrypt.Blind(rn.secret))
			if !want.Equal(n.secret) {
				return nil, fmt.Errorf("%w: interior secret %v inconsistent with children", ErrBadSnapshot, n.id)
			}
			return n, nil
		default:
			return nil, fmt.Errorf("%w: OFT node with %d children", ErrBadSnapshot, kids)
		}
	}
	root, err := read(0)
	if err != nil {
		return nil, err
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, r.rest())
	}
	t.root = root
	return t, nil
}
