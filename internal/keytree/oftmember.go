package keytree

import (
	"groupkey/internal/keycrypt"
)

// OFTMember is the receiver side of a one-way function tree: it holds its
// own leaf secret, its path structure, and the blinded keys of the
// siblings along the path, and recomputes every path key — including the
// group key — locally. This is the defining property of OFT: the server
// never transmits unblinded interior keys at all.
type OFTMember struct {
	id     MemberID
	leaf   keycrypt.Key
	path   []OFTPathEntry
	blinds map[keycrypt.KeyID]keycrypt.Key // sibling blinds, latest version
}

// NewOFTMember bootstraps a member from its registration package: the
// member ID and leaf secret handed over the secure registration channel.
// Path structure and sibling blinds arrive with the first rekey payload.
func NewOFTMember(id MemberID, leaf keycrypt.Key) *OFTMember {
	return &OFTMember{
		id:     id,
		leaf:   leaf,
		blinds: make(map[keycrypt.KeyID]keycrypt.Key),
	}
}

// ID returns the member identity.
func (m *OFTMember) ID() MemberID { return m.id }

// Apply consumes a rekey payload: it installs any path re-sync addressed
// to this member, absorbs leaf refreshes and new sibling blinds (decrypting
// to a fixpoint — unwrapping a blind at one level may require first
// computing the subtree key at a lower level), and returns the number of
// items it used.
func (m *OFTMember) Apply(p *OFTPayload) int {
	if entries, ok := p.Paths[m.id]; ok {
		m.path = append([]OFTPathEntry(nil), entries...)
	}
	used := 0
	consumed := make([]bool, len(p.Items))
	for {
		progress := false
		chain := m.chainKeys()
		for i, it := range p.Items {
			if consumed[i] {
				continue
			}
			w := it.Wrapped
			switch it.Kind {
			case LeafRefresh:
				if w.WrapperID != m.leaf.ID || w.WrapperVersion != m.leaf.Version {
					continue
				}
				got, err := keycrypt.Unwrap(w, m.leaf)
				if err != nil {
					continue
				}
				m.leaf = got
				consumed[i] = true
				used++
				progress = true
			case BlindWrap, JoinerWrap:
				wrapper, ok := chain[w.WrapperID]
				if !ok || wrapper.Version != w.WrapperVersion {
					// The joiner bootstrap wraps under the leaf secret.
					if w.WrapperID == m.leaf.ID && w.WrapperVersion == m.leaf.Version {
						wrapper = m.leaf
					} else {
						continue
					}
				}
				got, err := keycrypt.Unwrap(w, wrapper)
				if err != nil {
					continue
				}
				// Always adopt the delivered blind: interior versions are
				// sums of child versions and can legitimately decrease when
				// a splice swaps a subtree for a smaller one, so there is
				// no monotone staleness test — the server only ever emits
				// current values.
				m.blinds[got.ID] = got
				consumed[i] = true
				used++
				progress = true
			}
		}
		if !progress {
			return used
		}
	}
}

// chainKeys computes every key on the member's path it can currently
// derive, keyed by node ID. The map includes the leaf secret and, when all
// sibling blinds are present, the root group key.
func (m *OFTMember) chainKeys() map[keycrypt.KeyID]keycrypt.Key {
	out := map[keycrypt.KeyID]keycrypt.Key{m.leaf.ID: m.leaf}
	cur := m.leaf
	for _, e := range m.path {
		sib, ok := m.blinds[e.Sibling]
		if !ok {
			break
		}
		version := cur.Version + sib.Version
		var parent keycrypt.Key
		if e.SiblingOnLeft {
			parent = keycrypt.Mix(e.Parent, version, sib, keycrypt.Blind(cur))
		} else {
			parent = keycrypt.Mix(e.Parent, version, keycrypt.Blind(cur), sib)
		}
		out[parent.ID] = parent
		cur = parent
	}
	return out
}

// GroupKey returns the root key the member currently computes, or false
// when the member is missing blinds for some path level.
func (m *OFTMember) GroupKey() (keycrypt.Key, bool) {
	if len(m.path) == 0 {
		// Singleton group: the leaf is the root.
		return m.leaf, true
	}
	chain := m.chainKeys()
	rootID := m.path[len(m.path)-1].Parent
	k, ok := chain[rootID]
	return k, ok
}

// Has reports whether the member currently computes exactly this key on
// its path.
func (m *OFTMember) Has(k keycrypt.Key) bool {
	got, ok := m.chainKeys()[k.ID]
	return ok && got.Equal(k)
}
