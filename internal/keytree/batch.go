package keytree

import (
	"fmt"
	"io"
	"sort"

	"groupkey/internal/keycrypt"
)

// Batch describes the membership changes accumulated over one rekey
// interval: members joining and members departing. A member must not appear
// twice, nor both join and depart in the same batch (the key server filters
// members whose whole lifetime fits inside one interval — they are never
// admitted).
type Batch struct {
	Joins  []MemberID
	Leaves []MemberID
}

// IsEmpty reports whether the batch contains no membership change.
func (b Batch) IsEmpty() bool { return len(b.Joins) == 0 && len(b.Leaves) == 0 }

// ItemKind classifies how a rekey payload item is keyed.
type ItemKind int

const (
	// ChildWrap is an updated key encrypted under one of its children —
	// the departure-driven case of group-oriented rekeying.
	ChildWrap ItemKind = iota + 1
	// OldKeyWrap is an updated key encrypted under its own previous
	// version — the cheap join-only case (one wrap instead of d).
	OldKeyWrap
	// JoinerWrap is a path key encrypted under a joining member's
	// individual key.
	JoinerWrap
	// BlindWrap is an OFT blinded key encrypted under the sibling
	// subtree's computed key (see oft.go).
	BlindWrap
	// LeafRefresh is a fresh OFT leaf secret encrypted under the same
	// leaf's previous secret.
	LeafRefresh
)

// String implements fmt.Stringer.
func (k ItemKind) String() string {
	switch k {
	case ChildWrap:
		return "child-wrap"
	case OldKeyWrap:
		return "oldkey-wrap"
	case JoinerWrap:
		return "joiner-wrap"
	case BlindWrap:
		return "blind-wrap"
	case LeafRefresh:
		return "leaf-refresh"
	default:
		return fmt.Sprintf("ItemKind(%d)", int(k))
	}
}

// Item is one encrypted key in a rekey payload, with the routing metadata
// reliable rekey transport protocols need: which members still require it
// (the sparseness property) and how deep the payload key sits in the tree.
type Item struct {
	Wrapped keycrypt.WrappedKey
	Kind    ItemKind
	// Level is the depth of the payload key's node: 0 for the tree root,
	// increasing toward the leaves. Transport protocols weight low-level
	// (close-to-root) keys more heavily because more members need them.
	Level int
	// Receivers lists the members that need this item, ascending.
	Receivers []MemberID
}

// Payload is the output of one batched rekey operation.
type Payload struct {
	// Epoch is the rekey sequence number, stamped by the key server.
	Epoch uint64
	// Items are the multicast rekey items: child wraps and old-key wraps
	// for current members.
	Items []Item
	// JoinerItems carry the full key path to each joining member, wrapped
	// under its individual key. Depending on deployment these ride the same
	// multicast message (as in Wong et al.'s group-oriented rekeying) or go
	// out by unicast; they are kept separate so experiments can count
	// multicast bandwidth the way the paper's analytic model does.
	JoinerItems []Item
	// Placement records the structural decisions this rekey realized:
	// which joiner took which departure hole, which holes were removed,
	// where surplus joiners attached, and any rebalance moves. It never
	// rides the wire; tests and experiments use it to assert the realized
	// placement matches the chosen plan.
	Placement Placement
}

// MulticastKeyCount is the number of encrypted keys multicast to current
// members — the "rekeying cost (#keys)" metric of the paper's figures.
func (p *Payload) MulticastKeyCount() int { return len(p.Items) }

// TotalKeyCount counts every encrypted key including joiner path deliveries.
func (p *Payload) TotalKeyCount() int { return len(p.Items) + len(p.JoinerItems) }

// AllItems returns multicast items followed by joiner items.
func (p *Payload) AllItems() []Item {
	out := make([]Item, 0, len(p.Items)+len(p.JoinerItems))
	out = append(out, p.Items...)
	out = append(out, p.JoinerItems...)
	return out
}

// dirtyInfo tracks why a node needs redistribution during a batch.
type dirtyInfo struct {
	// departure is true when a member that knew this key departed (or was
	// replaced), forcing d child wraps. False means join-only taint.
	departure bool
	// oldKey is the node's key before the batch, used for OldKeyWrap.
	oldKey keycrypt.Key
	// isNew marks interior nodes created during this batch (leaf splits);
	// they have no previous version and no prior holders.
	isNew bool
}

// Rekey applies a batch of membership changes and produces the rekey
// payload under group-oriented rekeying:
//
//   - Joins are paired with departures first, so joiners fill vacated leaf
//     slots and the tree shape stays balanced (the J=L regime analyzed in
//     the paper's Appendix A). Surplus joins grow the tree; surplus
//     departures shrink it.
//   - Every key known to a departed member is refreshed and re-encrypted
//     under each of its surviving children.
//   - Keys tainted only by joins are refreshed and encrypted once under
//     their own previous version.
//   - Each joiner additionally receives its whole key path wrapped under
//     its individual key.
//
// Rekey mutates the tree. On error the tree is unchanged.
//
// When WithPlanner is set, the placement (which joiner takes which hole,
// where surplus joiners attach, whether any members are relocated) comes
// from the batch planner; otherwise the greedy pairing above is applied
// verbatim. Either way the plan is a deterministic function of the tree
// shape and the batch, so payload bytes replay identically.
func (t *Tree) Rekey(b Batch) (*Payload, error) {
	if err := t.validateBatch(b); err != nil {
		return nil, err
	}
	var plan Plan
	if t.planner != nil {
		plan = t.planner.plan(t, b)
	} else {
		plan = greedyPlan(b)
	}
	return t.applyPlan(b, plan)
}

// validatePlan checks a plan is a well-formed placement of the batch:
// every joiner placed exactly once, every hole consumed exactly once
// (filled, removed, or given to a move), and movers are current members
// outside the batch.
func (t *Tree) validatePlan(b Batch, p Plan) error {
	holes := make(map[MemberID]bool, len(b.Leaves))
	for _, m := range b.Leaves {
		holes[m] = false
	}
	joiners := make(map[MemberID]bool, len(b.Joins))
	for _, m := range b.Joins {
		joiners[m] = false
	}
	takeHole := func(m MemberID) error {
		used, ok := holes[m]
		if !ok {
			return fmt.Errorf("%w: plan references non-hole %d", ErrInvalidPlan, m)
		}
		if used {
			return fmt.Errorf("%w: hole %d assigned twice", ErrInvalidPlan, m)
		}
		holes[m] = true
		return nil
	}
	takeJoiner := func(m MemberID) error {
		used, ok := joiners[m]
		if !ok {
			return fmt.Errorf("%w: plan places non-joiner %d", ErrInvalidPlan, m)
		}
		if used {
			return fmt.Errorf("%w: joiner %d placed twice", ErrInvalidPlan, m)
		}
		joiners[m] = true
		return nil
	}
	for _, f := range p.Fills {
		if err := takeHole(f.Hole); err != nil {
			return err
		}
		if err := takeJoiner(f.Joiner); err != nil {
			return err
		}
	}
	for _, m := range p.Removals {
		if err := takeHole(m); err != nil {
			return err
		}
	}
	moved := make(map[MemberID]bool, len(p.Moves))
	for _, mv := range p.Moves {
		if err := takeHole(mv.Hole); err != nil {
			return err
		}
		if !t.Contains(mv.Member) {
			return fmt.Errorf("%w: move of unknown member %d", ErrInvalidPlan, mv.Member)
		}
		if _, inBatch := holes[mv.Member]; inBatch {
			return fmt.Errorf("%w: move of departing member %d", ErrInvalidPlan, mv.Member)
		}
		if _, inBatch := joiners[mv.Member]; inBatch {
			return fmt.Errorf("%w: move of joining member %d", ErrInvalidPlan, mv.Member)
		}
		if moved[mv.Member] {
			return fmt.Errorf("%w: member %d moved twice", ErrInvalidPlan, mv.Member)
		}
		moved[mv.Member] = true
	}
	for _, g := range p.Grows {
		if err := takeJoiner(g.Joiner); err != nil {
			return err
		}
	}
	for m, used := range holes {
		if !used {
			return fmt.Errorf("%w: hole %d never consumed", ErrInvalidPlan, m)
		}
	}
	for m, used := range joiners {
		if !used {
			return fmt.Errorf("%w: joiner %d never placed", ErrInvalidPlan, m)
		}
	}
	return nil
}

// applyPlan executes a validated placement through the historical rekey
// phases. Fills, removals, moves, and grows run in plan order, so when the
// plan is greedyPlan(b) the entropy draws — and therefore the payload
// bytes — are identical to the pre-planner implementation.
func (t *Tree) applyPlan(b Batch, plan Plan) (*Payload, error) {
	if err := t.validatePlan(b, plan); err != nil {
		return nil, err
	}

	dirty := make(map[*Node]*dirtyInfo)
	joiners := make(map[MemberID]bool, len(b.Joins)+len(plan.Moves))
	for _, m := range b.Joins {
		joiners[m] = true
	}

	mark := func(n *Node, departure bool) {
		for ; n != nil; n = n.parent {
			info, ok := dirty[n]
			if !ok {
				info = &dirtyInfo{oldKey: n.key}
				dirty[n] = info
			}
			info.departure = info.departure || departure
		}
	}

	// Phase 1: fills — joiners take the chosen departure holes.
	for _, f := range plan.Fills {
		leaf := t.leaves[f.Hole]
		delete(t.leaves, f.Hole)
		fresh, err := t.freshKey()
		if err != nil {
			return nil, err
		}
		leaf.key = fresh
		leaf.member = f.Joiner
		t.leaves[f.Joiner] = leaf
		mark(leaf.parent, true)
		t.stats.Joins++
		t.stats.Departures++
	}

	// Phase 2: surplus departures shrink the tree.
	for _, m := range plan.Removals {
		anc, err := t.removeLeaf(m)
		if err != nil {
			return nil, err // unreachable: validated above
		}
		mark(anc, true)
		t.stats.Departures++
	}

	// Phase 2b: rebalance moves — an existing member relocates into a
	// hole that would otherwise be removed. The mover's old path is a
	// departure (it must not keep decrypting its old subtree's updates),
	// the hole gets a fresh leaf key, and the mover is folded into the
	// joiner set so it receives its new path as JoinerWrap items, chained
	// off a LeafRefresh bridge emitted after the payload.
	type bridge struct {
		member MemberID
		oldKey keycrypt.Key
		leaf   *Node
	}
	var bridges []bridge
	for _, mv := range plan.Moves {
		oldKey := t.leaves[mv.Member].key
		anc, err := t.removeLeaf(mv.Member)
		if err != nil {
			return nil, err // unreachable: validated above
		}
		mark(anc, true)
		leaf := t.leaves[mv.Hole]
		delete(t.leaves, mv.Hole)
		fresh, err := t.freshKey()
		if err != nil {
			return nil, err
		}
		leaf.key = fresh
		leaf.member = mv.Member
		t.leaves[mv.Member] = leaf
		mark(leaf.parent, true)
		joiners[mv.Member] = true
		bridges = append(bridges, bridge{member: mv.Member, oldKey: oldKey, leaf: leaf})
		t.stats.Departures++ // the hole's former occupant departs
		t.plannerStats.Moves++
	}

	// Phase 3: surplus joins grow the tree, at the planned anchors or by
	// least-leaves descent.
	var byKeyID map[keycrypt.KeyID]*Node
	grown := make([]Growth, 0, len(plan.Grows))
	for _, g := range plan.Grows {
		if g.Anchor != 0 {
			if byKeyID == nil {
				byKeyID = make(map[keycrypt.KeyID]*Node)
				walk(t.root, func(n *Node) {
					if !n.IsLeaf() {
						byKeyID[n.key.ID] = n
					}
				})
			}
			anchor := byKeyID[g.Anchor]
			if anchor == nil || !t.attached(anchor) || len(anchor.children) >= t.degree {
				return nil, fmt.Errorf("%w: anchor %v unusable for joiner %d", ErrInvalidPlan, g.Anchor, g.Joiner)
			}
			fresh, err := t.freshKey()
			if err != nil {
				return nil, err
			}
			leaf := &Node{key: fresh, parent: anchor, member: g.Joiner, leaves: 1}
			anchor.children = append(anchor.children, leaf)
			for p := anchor; p != nil; p = p.parent {
				p.leaves++
			}
			t.leaves[g.Joiner] = leaf
			mark(anchor, false)
			t.stats.Joins++
			grown = append(grown, Growth{Joiner: g.Joiner, Anchor: anchor.key.ID})
			continue
		}
		leaf, created, err := t.insertLeafTracked(g.Joiner)
		if err != nil {
			return nil, err
		}
		if created != nil {
			dirty[created] = &dirtyInfo{isNew: true, departure: true}
			mark(created.parent, false)
		} else {
			mark(leaf.parent, false)
		}
		t.stats.Joins++
		var parentID keycrypt.KeyID
		if leaf.parent != nil {
			parentID = leaf.parent.key.ID
		}
		grown = append(grown, Growth{Joiner: g.Joiner, Anchor: parentID})
	}

	// Prune dirty entries for nodes spliced out of the tree by removals.
	for n := range dirty {
		if !t.attached(n) || n.IsLeaf() {
			delete(dirty, n)
		}
	}

	// Phase 4: refresh all pre-existing dirty keys, in key-ID order. Map
	// iteration order would assign entropy to nodes differently on every
	// run, making rekeys irreproducible under a deterministic reader.
	refreshing := make([]*Node, 0, len(dirty))
	for n, info := range dirty {
		if !info.isNew {
			refreshing = append(refreshing, n)
		}
	}
	sort.Slice(refreshing, func(i, j int) bool { return refreshing[i].key.ID < refreshing[j].key.ID })
	for _, n := range refreshing {
		if err := t.refresh(n); err != nil {
			return nil, err
		}
	}

	// Phases 5–6: emit the payload. The engine plans wrap jobs on this
	// goroutine (drawing nonces in canonical order) and fans the AES-GCM
	// work over a bounded pool; the legacy emitter is the serial baseline
	// oracle kept for determinism tests and perf comparisons.
	var p *Payload
	var err error
	if t.legacyRekey {
		p, err = t.emitLegacy(dirty, joiners)
	} else {
		p, err = t.emitPlanned(dirty, joiners)
	}
	if err != nil {
		return nil, err
	}

	// Bridge items: each mover's fresh leaf key wrapped under its previous
	// leaf key, unlocking the mover's JoinerWrap path chain. Emitted after
	// both emitters' draws, in mover-ID order, so payload bytes stay
	// identical across emitters and worker counts.
	sort.Slice(bridges, func(i, j int) bool { return bridges[i].member < bridges[j].member })
	for _, br := range bridges {
		w, err := t.wrapper.Wrap(br.leaf.key, br.oldKey, t.gen.Rand)
		if err != nil {
			return nil, fmt.Errorf("keytree: wrapping move bridge for member %d: %w", br.member, err)
		}
		p.JoinerItems = append(p.JoinerItems, Item{
			Wrapped:   w,
			Kind:      LeafRefresh,
			Level:     br.leaf.Depth(),
			Receivers: []MemberID{br.member},
		})
	}

	p.Placement = Placement{
		Fills:          plan.Fills,
		Removed:        plan.Removals,
		Grown:          grown,
		Moves:          plan.Moves,
		Planned:        plan.Planned,
		PredictedWraps: plan.PredictedWraps,
	}

	t.stats.KeysWrapped += p.TotalKeyCount()
	t.stats.Rekeys++
	return p, nil
}

// emitLegacy is the pre-engine emitter: wraps are produced one at a time,
// deepest nodes first, re-deriving receiver lists by subtree walk and the
// AES key schedule per wrap. Its output defines the payload byte format
// the engine must reproduce exactly.
func (t *Tree) emitLegacy(dirty map[*Node]*dirtyInfo, joiners map[MemberID]bool) (*Payload, error) {
	// Phase 5: emit wraps, deepest nodes first for readable payloads.
	nodes := make([]*Node, 0, len(dirty))
	for n := range dirty {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := nodes[i].Depth(), nodes[j].Depth()
		if di != dj {
			return di > dj
		}
		return nodes[i].key.ID < nodes[j].key.ID
	})

	p := &Payload{}
	for _, n := range nodes {
		info := dirty[n]
		level := n.Depth()
		if info.departure || info.isNew {
			for _, c := range n.children {
				receivers := t.receiversUnder(c, joiners)
				if len(receivers) == 0 {
					// Every member under c is a joiner of this batch and
					// receives the key through its JoinerWrap path instead;
					// multicasting this wrap would carry zero information.
					continue
				}
				w, err := wrapUncached(n.key, c.key, t.gen.Rand)
				if err != nil {
					return nil, fmt.Errorf("keytree: wrapping %s under %s: %w", n.key.ID, c.key.ID, err)
				}
				p.Items = append(p.Items, Item{
					Wrapped:   w,
					Kind:      ChildWrap,
					Level:     level,
					Receivers: receivers,
				})
			}
		} else {
			receivers := t.receiversUnder(n, joiners)
			if len(receivers) == 0 {
				continue
			}
			w, err := wrapUncached(n.key, info.oldKey, t.gen.Rand)
			if err != nil {
				return nil, fmt.Errorf("keytree: wrapping %s under old version: %w", n.key.ID, err)
			}
			p.Items = append(p.Items, Item{
				Wrapped:   w,
				Kind:      OldKeyWrap,
				Level:     level,
				Receivers: receivers,
			})
		}
	}

	// Phase 6: joiner path deliveries.
	joinerIDs := make([]MemberID, 0, len(joiners))
	for m := range joiners {
		joinerIDs = append(joinerIDs, m)
	}
	sort.Slice(joinerIDs, func(i, j int) bool { return joinerIDs[i] < joinerIDs[j] })
	for _, m := range joinerIDs {
		leaf := t.leaves[m]
		for n := leaf.parent; n != nil; n = n.parent {
			w, err := wrapUncached(n.key, leaf.key, t.gen.Rand)
			if err != nil {
				return nil, fmt.Errorf("keytree: wrapping path key for joiner %d: %w", m, err)
			}
			p.JoinerItems = append(p.JoinerItems, Item{
				Wrapped:   w,
				Kind:      JoinerWrap,
				Level:     n.Depth(),
				Receivers: []MemberID{m},
			})
		}
	}
	return p, nil
}

// wrapUncached is the baseline wrap: a throwaway Wrapper per call keeps the
// oracle's cost profile at the pre-engine level (one key schedule per wrap)
// without duplicating keycrypt internals.
func wrapUncached(payload, wrapper keycrypt.Key, rng io.Reader) (keycrypt.WrappedKey, error) {
	return keycrypt.NewWrapper().Wrap(payload, wrapper, rng)
}

// Join admits a single member immediately (non-batched rekeying). It is a
// convenience wrapper around Rekey.
func (t *Tree) Join(m MemberID) (*Payload, error) {
	return t.Rekey(Batch{Joins: []MemberID{m}})
}

// Leave evicts a single member immediately (non-batched rekeying).
func (t *Tree) Leave(m MemberID) (*Payload, error) {
	return t.Rekey(Batch{Leaves: []MemberID{m}})
}

func (t *Tree) validateBatch(b Batch) error {
	seen := make(map[MemberID]bool, len(b.Joins)+len(b.Leaves))
	for _, m := range b.Joins {
		if m == 0 {
			return ErrZeroMember
		}
		if seen[m] {
			return fmt.Errorf("%w: member %d listed twice", ErrBatchConflict, m)
		}
		seen[m] = true
		if t.Contains(m) {
			return fmt.Errorf("%w: %d", ErrMemberExists, m)
		}
	}
	for _, m := range b.Leaves {
		if m == 0 {
			return ErrZeroMember
		}
		if seen[m] {
			return fmt.Errorf("%w: member %d both joins and leaves", ErrBatchConflict, m)
		}
		seen[m] = true
		if !t.Contains(m) {
			return fmt.Errorf("%w: %d", ErrMemberUnknown, m)
		}
	}
	return nil
}

// insertLeafTracked is insertLeaf but also reports the interior node created
// by a leaf split, if any.
func (t *Tree) insertLeafTracked(m MemberID) (leaf, createdInterior *Node, err error) {
	// Re-implementation of insertLeaf that surfaces the split node; the
	// simple variant delegates here.
	key, err := t.freshKey()
	if err != nil {
		return nil, nil, err
	}
	leaf = &Node{key: key, member: m, leaves: 1}

	if t.root == nil {
		t.root = leaf
		t.leaves[m] = leaf
		return leaf, nil, nil
	}

	n := t.root
	for {
		if n.IsLeaf() {
			interiorKey, err := t.freshKey()
			if err != nil {
				return nil, nil, err
			}
			interior := &Node{
				key:      interiorKey,
				parent:   n.parent,
				children: []*Node{n, leaf},
				leaves:   n.leaves + 1,
			}
			if n.parent == nil {
				t.root = interior
			} else {
				replaceChild(n.parent, n, interior)
			}
			n.parent = interior
			leaf.parent = interior
			for p := interior.parent; p != nil; p = p.parent {
				p.leaves++
			}
			t.leaves[m] = leaf
			return leaf, interior, nil
		}
		if len(n.children) < t.degree {
			leaf.parent = n
			n.children = append(n.children, leaf)
			for p := n; p != nil; p = p.parent {
				p.leaves++
			}
			t.leaves[m] = leaf
			return leaf, nil, nil
		}
		best := n.children[0]
		for _, c := range n.children[1:] {
			if c.leaves < best.leaves {
				best = c
			}
		}
		n = best
	}
}

// attached reports whether n is still reachable from the tree root.
func (t *Tree) attached(n *Node) bool {
	for ; n != nil; n = n.parent {
		if n == t.root {
			return true
		}
	}
	return false
}

// receiversUnder collects the members under n, excluding the given joiners
// (who receive their keys through JoinerWrap items instead).
func (t *Tree) receiversUnder(n *Node, exclude map[MemberID]bool) []MemberID {
	out := make([]MemberID, 0, n.leaves)
	walk(n, func(x *Node) {
		if x.member != 0 && !exclude[x.member] {
			out = append(out, x.member)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
