package keytree

import (
	"fmt"
	"testing"

	"groupkey/internal/keycrypt"
)

// checkInvariants verifies structural soundness of the tree:
//
//  1. parent/child pointers are mutually consistent,
//  2. per-node leaf counts equal the real number of member leaves below,
//  3. interior nodes have between 2 and degree children (no chains),
//  4. every member in the leaf index is attached, and every attached member
//     leaf is in the index,
//  5. leaf nodes carry members, interior nodes do not,
//  6. all key IDs are unique.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if err := invariantErr(tr); err != nil {
		t.Fatalf("tree invariant violated: %v", err)
	}
}

func invariantErr(tr *Tree) error {
	if tr.root == nil {
		if len(tr.leaves) != 0 {
			return fmt.Errorf("nil root but %d indexed leaves", len(tr.leaves))
		}
		return nil
	}
	if tr.root.parent != nil {
		return fmt.Errorf("root has a parent")
	}
	seenMembers := make(map[MemberID]bool)
	seenKeyIDs := make(map[keycrypt.KeyID]bool)
	var errOut error
	var visit func(n *Node) int
	visit = func(n *Node) int {
		if errOut != nil {
			return 0
		}
		if seenKeyIDs[n.key.ID] {
			errOut = fmt.Errorf("duplicate key ID %v", n.key.ID)
			return 0
		}
		seenKeyIDs[n.key.ID] = true
		if n.IsLeaf() {
			if n.member == 0 {
				errOut = fmt.Errorf("leaf without member (key %v)", n.key.ID)
				return 0
			}
			if n.leaves != 1 {
				errOut = fmt.Errorf("leaf %d has leaves=%d", n.member, n.leaves)
			}
			if idx, ok := tr.leaves[n.member]; !ok || idx != n {
				errOut = fmt.Errorf("leaf for member %d not indexed correctly", n.member)
			}
			seenMembers[n.member] = true
			return 1
		}
		if n.member != 0 {
			errOut = fmt.Errorf("interior node carries member %d", n.member)
			return 0
		}
		if len(n.children) < 2 || len(n.children) > tr.degree {
			errOut = fmt.Errorf("interior node has %d children (degree %d)", len(n.children), tr.degree)
			return 0
		}
		total := 0
		for _, c := range n.children {
			if c.parent != n {
				errOut = fmt.Errorf("child of key %v has wrong parent pointer", n.key.ID)
				return 0
			}
			total += visit(c)
		}
		if total != n.leaves {
			errOut = fmt.Errorf("node %v leaves=%d but subtree holds %d", n.key.ID, n.leaves, total)
		}
		return total
	}
	visit(tr.root)
	if errOut != nil {
		return errOut
	}
	if len(seenMembers) != len(tr.leaves) {
		return fmt.Errorf("index has %d members, tree has %d", len(tr.leaves), len(seenMembers))
	}
	return nil
}

// memberView simulates a group member's key store for cryptographic
// verification of rekey payloads: it starts from the member's known keys and
// applies payload items to fixpoint, exactly as a real receiver would.
type memberView struct {
	id   MemberID
	keys map[keycrypt.KeyID]keycrypt.Key
}

func newMemberView(id MemberID, path []keycrypt.Key) *memberView {
	v := &memberView{id: id, keys: make(map[keycrypt.KeyID]keycrypt.Key, len(path))}
	for _, k := range path {
		v.keys[k.ID] = k
	}
	return v
}

// apply decrypts everything it can from the payload, iterating until no
// further item unwraps. Returns the number of items decrypted.
func (v *memberView) apply(p *Payload) int {
	items := p.AllItems()
	decrypted := 0
	for {
		progress := false
		for _, it := range items {
			w := it.Wrapped
			have, ok := v.keys[w.WrapperID]
			if !ok || have.Version != w.WrapperVersion {
				continue
			}
			cur, haveCur := v.keys[w.PayloadID]
			if haveCur && cur.Version >= w.PayloadVersion {
				continue
			}
			got, err := keycrypt.Unwrap(w, have)
			if err != nil {
				continue
			}
			v.keys[got.ID] = got
			decrypted++
			progress = true
		}
		if !progress {
			return decrypted
		}
	}
}

// canRecover reports whether the view holds the given key exactly.
func (v *memberView) canRecover(k keycrypt.Key) bool {
	have, ok := v.keys[k.ID]
	return ok && have.Equal(k)
}

// snapshotViews builds a memberView for every current member of the tree.
func snapshotViews(t *testing.T, tr *Tree) map[MemberID]*memberView {
	t.Helper()
	views := make(map[MemberID]*memberView, tr.Size())
	for _, m := range tr.Members() {
		path, err := tr.Path(m)
		if err != nil {
			t.Fatalf("Path(%d): %v", m, err)
		}
		views[m] = newMemberView(m, path)
	}
	return views
}

// verifyRekeyRound checks the full cryptographic contract of one Rekey call:
// pre-batch member views plus the payload must yield every survivor its new
// path; departed members must recover no new key; joiners must recover their
// paths from their individual key alone.
func verifyRekeyRound(t *testing.T, tr *Tree, pre map[MemberID]*memberView, b Batch, p *Payload) {
	t.Helper()
	departed := make(map[MemberID]bool, len(b.Leaves))
	for _, m := range b.Leaves {
		departed[m] = true
	}
	joined := make(map[MemberID]bool, len(b.Joins))
	for _, m := range b.Joins {
		joined[m] = true
	}

	newRoot, err := tr.RootKey()
	if err != nil && tr.Size() > 0 {
		t.Fatalf("RootKey: %v", err)
	}

	// Survivors recover their complete new path.
	for m, view := range pre {
		if departed[m] {
			continue
		}
		view.apply(p)
		path, err := tr.Path(m)
		if err != nil {
			t.Fatalf("Path(%d): %v", m, err)
		}
		for _, k := range path {
			if !view.canRecover(k) {
				t.Fatalf("survivor %d cannot recover path key %v after rekey", m, k)
			}
		}
	}

	// Departed members recover nothing new — in particular not the root.
	for m, view := range pre {
		if !departed[m] {
			continue
		}
		n := view.apply(p)
		if n != 0 {
			t.Fatalf("departed member %d decrypted %d rekey items (forward secrecy broken)", m, n)
		}
		if tr.Size() > 0 && view.canRecover(newRoot) {
			t.Fatalf("departed member %d recovered the new group key", m)
		}
	}

	// Joiners bootstrap from their individual key only.
	for m := range joined {
		leaf, err := tr.Leaf(m)
		if err != nil {
			t.Fatalf("Leaf(%d): %v", m, err)
		}
		view := newMemberView(m, []keycrypt.Key{leaf.Key()})
		view.apply(p)
		path, err := tr.Path(m)
		if err != nil {
			t.Fatalf("Path(%d): %v", m, err)
		}
		for _, k := range path {
			if !view.canRecover(k) {
				t.Fatalf("joiner %d cannot recover path key %v", m, k)
			}
		}
	}
}
