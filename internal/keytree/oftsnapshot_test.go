package keytree

import (
	"errors"
	"testing"

	"groupkey/internal/keycrypt"
)

func TestOFTSnapshotRoundTrip(t *testing.T) {
	h := newOFTHarness(t, 70)
	h.process(Batch{Joins: ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)})
	h.process(Batch{Leaves: ids(4), Joins: ids(20)})

	blob, err := h.tree.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	got, err := RestoreOFT(blob, WithRand(keycrypt.NewDeterministicReader(71)))
	if err != nil {
		t.Fatalf("RestoreOFT: %v", err)
	}
	if got.Size() != h.tree.Size() || got.Height() != h.tree.Height() {
		t.Fatalf("shape mismatch: size %d/%d height %d/%d",
			got.Size(), h.tree.Size(), got.Height(), h.tree.Height())
	}
	wantGK, _ := h.tree.GroupKey()
	gotGK, err := got.GroupKey()
	if err != nil || !gotGK.Equal(wantGK) {
		t.Fatalf("group key mismatch after restore")
	}
	for _, m := range h.tree.Members() {
		ws, _ := h.tree.LeafSecret(m)
		gs, err := got.LeafSecret(m)
		if err != nil || !gs.Equal(ws) {
			t.Fatalf("member %d leaf secret mismatch", m)
		}
	}
	// The restored tree keeps rekeying; existing member state follows.
	p, err := got.Rekey(Batch{Leaves: ids(7)})
	if err != nil {
		t.Fatalf("Rekey after restore: %v", err)
	}
	alice := h.clients[1]
	alice.Apply(p)
	newGK, _ := got.GroupKey()
	if gk, ok := alice.GroupKey(); !ok || !gk.Equal(newGK) {
		t.Fatal("pre-snapshot member cannot follow a post-restore rekey")
	}
}

func TestOFTSnapshotEmpty(t *testing.T) {
	tree, err := NewOFT(WithRand(keycrypt.NewDeterministicReader(72)))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestoreOFT(blob, WithRand(keycrypt.NewDeterministicReader(73)))
	if err != nil {
		t.Fatalf("RestoreOFT: %v", err)
	}
	if got.Size() != 0 {
		t.Fatalf("size=%d, want 0", got.Size())
	}
}

func TestRestoreOFTRejectsCorruption(t *testing.T) {
	h := newOFTHarness(t, 74)
	h.process(Batch{Joins: ids(1, 2, 3, 4)})
	blob, err := h.tree.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), blob[4:]...),
		"truncated": blob[:len(blob)-3],
	}
	for name, data := range cases {
		if _, err := RestoreOFT(data); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err=%v, want ErrBadSnapshot", name, err)
		}
	}
	// Corrupt one secret byte deep in the tree: the Mix-consistency check
	// must catch it even though the framing is intact.
	bad := append([]byte{}, blob...)
	bad[len(bad)-20] ^= 0xff
	if _, err := RestoreOFT(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("corrupted secret: err=%v, want ErrBadSnapshot (Mix inconsistency)", err)
	}
}
