package keytree

import (
	"testing"
	"testing/quick"

	"groupkey/internal/keycrypt"
)

func TestRekeySingleLeaveCryptoContract(t *testing.T) {
	tr := newTestTree(t, 4, 20)
	populate(t, tr, 64)
	pre := snapshotViews(t, tr)
	b := Batch{Leaves: []MemberID{13}}
	p, err := tr.Rekey(b)
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	checkInvariants(t, tr)
	verifyRekeyRound(t, tr, pre, b, p)
}

func TestRekeySingleJoinCryptoContract(t *testing.T) {
	tr := newTestTree(t, 4, 21)
	populate(t, tr, 63)
	pre := snapshotViews(t, tr)
	b := Batch{Joins: []MemberID{500}}
	p, err := tr.Rekey(b)
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	checkInvariants(t, tr)
	verifyRekeyRound(t, tr, pre, b, p)
}

func TestRekeyMixedBatchCryptoContract(t *testing.T) {
	tr := newTestTree(t, 4, 22)
	populate(t, tr, 128)
	pre := snapshotViews(t, tr)
	b := Batch{
		Joins:  []MemberID{300, 301, 302},
		Leaves: []MemberID{5, 50, 77, 90, 128},
	}
	p, err := tr.Rekey(b)
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	checkInvariants(t, tr)
	verifyRekeyRound(t, tr, pre, b, p)
}

func TestRekeyJoinsOnlyUsesOldKeyWraps(t *testing.T) {
	tr := newTestTree(t, 4, 23)
	populate(t, tr, 64)
	pre := snapshotViews(t, tr)
	b := Batch{Joins: []MemberID{200, 201}}
	p, err := tr.Rekey(b)
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	verifyRekeyRound(t, tr, pre, b, p)

	oldWraps, childWraps := 0, 0
	for _, it := range p.Items {
		switch it.Kind {
		case OldKeyWrap:
			oldWraps++
		case ChildWrap:
			childWraps++
		}
	}
	if oldWraps == 0 {
		t.Error("join-only batch produced no OldKeyWrap items")
	}
	// Adding to a 64-member full d=4 tree may split a leaf (ChildWraps for
	// the fresh interior node) but must not child-wrap pre-existing keys.
	for _, it := range p.Items {
		if it.Kind == ChildWrap && it.Level == 0 {
			t.Error("join-only batch child-wrapped the root (should use the old root key)")
		}
	}
	_ = childWraps
}

func TestRekeyDepartureCostMatchesLKHBound(t *testing.T) {
	// Single departure from a full, balanced d-ary tree must cost about
	// d·log_d(N) multicast keys (paper Section 3.1).
	tests := []struct {
		degree, n int
	}{
		{2, 64}, {4, 256}, {4, 1024}, {8, 512},
	}
	for _, tt := range tests {
		tr := newTestTree(t, tt.degree, uint64(30+tt.degree))
		populate(t, tr, tt.n)
		h := tr.Height()
		p, err := tr.Leave(MemberID(tt.n / 2))
		if err != nil {
			t.Fatalf("Leave: %v", err)
		}
		got := p.MulticastKeyCount()
		// Updated keys: the h ancestors of the departed leaf, each wrapped
		// under its surviving children. For d>2 the leaf's parent keeps d-1
		// children: cost d·h − 1. For d=2 the parent is left with a single
		// child and spliced out entirely: cost 2·(h−1).
		want := tt.degree*h - 1
		if tt.degree == 2 {
			want = 2 * (h - 1)
		}
		if got != want {
			t.Errorf("d=%d N=%d: departure cost %d keys, want %d", tt.degree, tt.n, got, want)
		}
	}
}

func TestRekeyBatchOverlapSavesKeys(t *testing.T) {
	// Two departures sharing ancestors must cost less than twice one
	// departure (Section 2.1.1: overlapping paths are paid once).
	build := func() *Tree {
		tr := newTestTree(t, 4, 31)
		populate(t, tr, 256)
		return tr
	}
	tr1 := build()
	pSolo, err := tr1.Leave(1)
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	solo := pSolo.MulticastKeyCount()

	tr2 := build()
	// Members 1 and 2 are siblings in deterministic population order.
	pBoth, err := tr2.Rekey(Batch{Leaves: []MemberID{1, 2}})
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	both := pBoth.MulticastKeyCount()
	if both >= 2*solo {
		t.Errorf("batched departures cost %d, no cheaper than 2 singles (%d)", both, 2*solo)
	}
}

func TestRekeyReceiversSets(t *testing.T) {
	tr := newTestTree(t, 4, 32)
	populate(t, tr, 64)
	b := Batch{Leaves: []MemberID{9}}
	p, err := tr.Rekey(b)
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	// Receivers of root-level child wraps must partition the remaining
	// membership: every member needs the new root exactly once.
	seen := make(map[MemberID]int)
	for _, it := range p.Items {
		if it.Level != 0 {
			continue
		}
		if it.Kind != ChildWrap {
			t.Fatalf("root item kind %v after departure, want ChildWrap", it.Kind)
		}
		for _, m := range it.Receivers {
			seen[m]++
		}
	}
	if len(seen) != tr.Size() {
		t.Fatalf("root wraps reach %d members, want %d", len(seen), tr.Size())
	}
	for m, c := range seen {
		if c != 1 {
			t.Errorf("member %d appears in %d root wraps, want 1", m, c)
		}
	}
	if _, ok := seen[9]; ok {
		t.Error("departed member 9 listed as receiver")
	}
}

func TestRekeyEmptyBatchNoCost(t *testing.T) {
	tr := newTestTree(t, 4, 33)
	populate(t, tr, 16)
	rootBefore, _ := tr.RootKey()
	p, err := tr.Rekey(Batch{})
	if err != nil {
		t.Fatalf("Rekey(empty): %v", err)
	}
	if p.TotalKeyCount() != 0 {
		t.Errorf("empty batch cost %d keys, want 0", p.TotalKeyCount())
	}
	rootAfter, _ := tr.RootKey()
	if !rootBefore.Equal(rootAfter) {
		t.Error("empty batch changed the root key")
	}
}

func TestRekeyRootVersionAdvances(t *testing.T) {
	tr := newTestTree(t, 4, 34)
	populate(t, tr, 16)
	r0, _ := tr.RootKey()
	if _, err := tr.Leave(7); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	r1, _ := tr.RootKey()
	if r1.ID != r0.ID {
		t.Fatalf("root ID changed %v -> %v on departure", r0.ID, r1.ID)
	}
	if r1.Version != r0.Version+1 {
		t.Errorf("root version %d -> %d, want +1", r0.Version, r1.Version)
	}
	if r1.SameMaterial(r0) {
		t.Error("root material unchanged after departure")
	}
}

func TestRekeyPaperExample(t *testing.T) {
	// Reconstruct the paper's Fig. 1 scenario: degree 3, nine members
	// U1..U9, then U4 departs. The departure procedure must emit exactly
	// five encrypted keys: K'1-9 under {K123, K'456, K789} and K'456 under
	// {K5, K6}.
	tr := newTestTree(t, 3, 35)
	populate(t, tr, 9)
	checkInvariants(t, tr)
	if h := tr.Height(); h != 2 {
		t.Fatalf("height=%d, want 2 for 9 members at degree 3", h)
	}
	pre := snapshotViews(t, tr)
	b := Batch{Leaves: []MemberID{4}}
	p, err := tr.Rekey(b)
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	if got := p.MulticastKeyCount(); got != 5 {
		t.Errorf("U4 departure cost %d keys, paper says 5", got)
	}
	verifyRekeyRound(t, tr, pre, b, p)
}

func TestRekeyQuickPropertyRandomBatches(t *testing.T) {
	// Property: for arbitrary (small) join/leave batch shapes, the crypto
	// contract holds and invariants are preserved.
	type scenario struct {
		Seed   uint64
		NPre   uint8 // initial size
		NJoin  uint8
		NLeave uint8
	}
	run := func(s scenario) bool {
		nPre := int(s.NPre%100) + 1
		nJoin := int(s.NJoin % 8)
		nLeave := int(s.NLeave % 8)
		if nLeave > nPre {
			nLeave = nPre
		}
		tr, err := New(3, WithRand(keycrypt.NewDeterministicReader(s.Seed)))
		if err != nil {
			return false
		}
		b0 := Batch{}
		for i := 1; i <= nPre; i++ {
			b0.Joins = append(b0.Joins, MemberID(i))
		}
		if _, err := tr.Rekey(b0); err != nil {
			return false
		}
		b := Batch{}
		for i := 0; i < nJoin; i++ {
			b.Joins = append(b.Joins, MemberID(1000+i))
		}
		for i := 0; i < nLeave; i++ {
			b.Leaves = append(b.Leaves, MemberID(i+1))
		}
		pre := snapshotViewsQuiet(tr)
		p, err := tr.Rekey(b)
		if err != nil {
			return false
		}
		if invariantErr(tr) != nil {
			return false
		}
		return verifyRekeyRoundQuiet(tr, pre, b, p)
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// snapshotViewsQuiet is snapshotViews without *testing.T, for quick.Check.
func snapshotViewsQuiet(tr *Tree) map[MemberID]*memberView {
	views := make(map[MemberID]*memberView, tr.Size())
	for _, m := range tr.Members() {
		path, err := tr.Path(m)
		if err != nil {
			return nil
		}
		views[m] = newMemberView(m, path)
	}
	return views
}

// verifyRekeyRoundQuiet is verifyRekeyRound returning bool, for quick.Check.
func verifyRekeyRoundQuiet(tr *Tree, pre map[MemberID]*memberView, b Batch, p *Payload) bool {
	departed := make(map[MemberID]bool, len(b.Leaves))
	for _, m := range b.Leaves {
		departed[m] = true
	}
	for m, view := range pre {
		if departed[m] {
			if view.apply(p) != 0 {
				return false
			}
			continue
		}
		view.apply(p)
		path, err := tr.Path(m)
		if err != nil {
			return false
		}
		for _, k := range path {
			if !view.canRecover(k) {
				return false
			}
		}
	}
	for _, m := range b.Joins {
		leaf, err := tr.Leaf(m)
		if err != nil {
			return false
		}
		view := newMemberView(m, []keycrypt.Key{leaf.Key()})
		view.apply(p)
		path, err := tr.Path(m)
		if err != nil {
			return false
		}
		for _, k := range path {
			if !view.canRecover(k) {
				return false
			}
		}
	}
	return true
}
