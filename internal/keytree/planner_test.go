package keytree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"groupkey/internal/keycrypt"
)

// biasedBatches generates churn like fuzzBatches but with independently
// bounded join/leave sizes, so regimes can be skewed toward surplus joins
// (maxJoin > maxLeave) or surplus departures (maxLeave > maxJoin).
func biasedBatches(seed int64, initial, rounds, maxJoin, maxLeave int) []Batch {
	rnd := rand.New(rand.NewSource(seed))
	next := MemberID(1)
	var present []MemberID
	var batches []Batch

	prime := Batch{}
	for i := 0; i < initial; i++ {
		prime.Joins = append(prime.Joins, next)
		present = append(present, next)
		next++
	}
	batches = append(batches, prime)

	for r := 0; r < rounds; r++ {
		b := Batch{}
		nJoin := rnd.Intn(maxJoin + 1)
		nLeave := rnd.Intn(maxLeave + 1)
		// Never drain the group below a handful of members.
		if rest := len(present) - nLeave; rest < 4 {
			nLeave = max(0, len(present)-4)
		}
		rnd.Shuffle(len(present), func(i, j int) { present[i], present[j] = present[j], present[i] })
		b.Leaves = append(b.Leaves, present[:nLeave]...)
		present = present[nLeave:]
		for i := 0; i < nJoin; i++ {
			b.Joins = append(b.Joins, next)
			present = append(present, next)
			next++
		}
		batches = append(batches, b)
	}
	return batches
}

// checkPlacement asserts the payload's realized placement is a well-formed
// cover of the batch and, when the batch was simulated, that the realized
// multicast wrap count equals the prediction.
func checkPlacement(tb testing.TB, tr *Tree, b Batch, p *Payload) {
	tb.Helper()
	pl := p.Placement
	holes := make(map[MemberID]bool, len(b.Leaves))
	for _, m := range b.Leaves {
		holes[m] = false
	}
	joiners := make(map[MemberID]bool, len(b.Joins))
	for _, m := range b.Joins {
		joiners[m] = false
	}
	takeHole := func(m MemberID) {
		used, ok := holes[m]
		if !ok || used {
			tb.Fatalf("placement consumes hole %d badly (known=%v used=%v)", m, ok, used)
		}
		holes[m] = true
	}
	takeJoiner := func(m MemberID) {
		used, ok := joiners[m]
		if !ok || used {
			tb.Fatalf("placement places joiner %d badly (known=%v used=%v)", m, ok, used)
		}
		joiners[m] = true
	}
	for _, f := range pl.Fills {
		takeHole(f.Hole)
		takeJoiner(f.Joiner)
	}
	for _, m := range pl.Removed {
		takeHole(m)
	}
	for _, mv := range pl.Moves {
		takeHole(mv.Hole)
		if !tr.Contains(mv.Member) {
			tb.Fatalf("moved member %d no longer in tree", mv.Member)
		}
	}
	for _, g := range pl.Grown {
		takeJoiner(g.Joiner)
	}
	for m, used := range holes {
		if !used {
			tb.Fatalf("hole %d never consumed by placement", m)
		}
	}
	for m, used := range joiners {
		if !used {
			tb.Fatalf("joiner %d never placed by placement", m)
		}
	}
	if pl.PredictedWraps >= 0 && pl.PredictedWraps != p.MulticastKeyCount() {
		tb.Fatalf("planner predicted %d multicast wraps, realized %d (J=%d L=%d planned=%v moves=%d)",
			pl.PredictedWraps, p.MulticastKeyCount(), len(b.Joins), len(b.Leaves), pl.Planned, len(pl.Moves))
	}
}

// greedyOracle applies the batch with the greedy pairing to a snapshot
// clone of tr — the differential baseline: "what would this exact tree
// state have paid without the planner?"
func greedyOracle(tb testing.TB, tr *Tree, b Batch) (*Payload, *Tree) {
	tb.Helper()
	blob, err := tr.Snapshot()
	if err != nil {
		tb.Fatal(err)
	}
	clone, err := Restore(blob, WithRand(keycrypt.NewDeterministicReader(0xfeed)))
	if err != nil {
		tb.Fatal(err)
	}
	p, err := clone.Rekey(b)
	if err != nil {
		tb.Fatalf("greedy oracle rekey: %v", err)
	}
	return p, clone
}

// TestPlannerNeverWorseThanGreedy is the planner's core property: for
// every batch of seeded random churn, in every J≠L regime and at every
// tested group size, the planner's realized multicast wraps and post-batch
// ExpectedRekeyCost never exceed what the greedy pairing would have
// realized on the same tree state. This is exactly the dominance guard's
// contract at the default config, so it must hold for any seed.
func TestPlannerNeverWorseThanGreedy(t *testing.T) {
	type regime struct {
		name              string
		maxJoin, maxLeave int
	}
	regimes := []regime{
		{"balanced", 7, 7},
		{"join-heavy", 9, 3},
		{"leave-heavy", 3, 9},
	}
	sizes := []int{16, 1000}
	rounds := 30
	if !testing.Short() {
		sizes = append(sizes, 10000)
	}
	for _, n := range sizes {
		for _, rg := range regimes {
			for _, seed := range []int64{5, 23} {
				t.Run(fmt.Sprintf("n=%d/%s/seed=%d", n, rg.name, seed), func(t *testing.T) {
					var batches []Batch
					if rg.maxJoin == rg.maxLeave {
						batches = fuzzBatches(seed, n, rounds)
					} else {
						batches = biasedBatches(seed, n, rounds, rg.maxJoin, rg.maxLeave)
					}
					pt, err := New(4, WithRand(keycrypt.NewDeterministicReader(1)), WithPlanner(PlannerConfig{}))
					if err != nil {
						t.Fatal(err)
					}
					planned := 0
					for i, b := range batches {
						gp, clone := greedyOracle(t, pt, b)
						pp, err := pt.Rekey(b)
						if err != nil {
							t.Fatalf("batch %d: planner: %v", i, err)
						}
						checkPlacement(t, pt, b, pp)
						if pw, gw := pp.MulticastKeyCount(), gp.MulticastKeyCount(); pw > gw {
							t.Fatalf("batch %d (J=%d L=%d): planner wraps %d > greedy %d",
								i, len(b.Joins), len(b.Leaves), pw, gw)
						}
						l := max(1, len(b.Leaves))
						if pc, gc := pt.ExpectedRekeyCost(l), clone.ExpectedRekeyCost(l); pc > gc+costEps(gc) {
							t.Fatalf("batch %d (J=%d L=%d): planner cost %.6f > greedy %.6f",
								i, len(b.Joins), len(b.Leaves), pc, gc)
						}
						if pt.Size() != clone.Size() {
							t.Fatalf("batch %d: membership diverged: planner %d, greedy %d", i, pt.Size(), clone.Size())
						}
						if pp.Placement.Planned {
							planned++
						}
					}
					if st := pt.PlannerStats(); st.PlannedBatches != planned {
						t.Fatalf("PlannedBatches counter %d, observed %d planned payloads", st.PlannedBatches, planned)
					}
				})
			}
		}
	}
}

// TestPlannerDeterministicAcrossEmitters runs the planner-enabled tree
// through the legacy serial emitter and the planned engine over identical
// churn, asserting byte-identical payloads — the contract WAL replay and
// cluster replication depend on.
func TestPlannerDeterministicAcrossEmitters(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				cfg := PlannerConfig{DriftFactor: 1.01, MoveWrapSlack: 2} // make moves likely
				serial, err := New(3, WithRand(keycrypt.NewDeterministicReader(uint64(seed))), WithLegacyRekey(), WithPlanner(cfg))
				if err != nil {
					t.Fatal(err)
				}
				engine, err := New(3, WithRand(keycrypt.NewDeterministicReader(uint64(seed))), WithWrapWorkers(workers), WithPlanner(cfg))
				if err != nil {
					t.Fatal(err)
				}
				for i, b := range biasedBatches(seed, 40, 30, 3, 9) {
					ps, err := serial.Rekey(b)
					if err != nil {
						t.Fatalf("batch %d: serial: %v", i, err)
					}
					pe, err := engine.Rekey(b)
					if err != nil {
						t.Fatalf("batch %d: engine: %v", i, err)
					}
					if !bytes.Equal(marshalPayload(t, ps), marshalPayload(t, pe)) {
						t.Fatalf("batch %d: planner payload bytes diverge", i)
					}
				}
				if sm, em := serial.PlannerStats().Moves, engine.PlannerStats().Moves; sm != em {
					t.Fatalf("move counts diverge: serial %d, engine %d", sm, em)
				}
			})
		}
	}
}

// TestBalancedRekeyCostBound checks the rebalancer's reference bound: a
// greedily grown (join-only, hence balanced) tree should sit at drift ≈ 1,
// and the bound must never exceed the real tree's cost by more than split
// rounding noise.
func TestBalancedRekeyCostBound(t *testing.T) {
	for _, n := range []int{2, 7, 16, 100, 1000} {
		tr, err := New(4, WithRand(keycrypt.NewDeterministicReader(9)))
		if err != nil {
			t.Fatal(err)
		}
		prime := Batch{}
		for i := 1; i <= n; i++ {
			prime.Joins = append(prime.Joins, MemberID(i))
		}
		if _, err := tr.Rekey(prime); err != nil {
			t.Fatal(err)
		}
		for _, l := range []int{1, 4} {
			drift := tr.CostDrift(l)
			if drift < 0.95 || drift > 1.3 {
				t.Fatalf("n=%d l=%d: balanced-grown tree drift %.4f outside [0.95, 1.3]", n, l, drift)
			}
		}
	}
	if got := BalancedRekeyCost(1, 4, 3); got != 0 {
		t.Fatalf("single-member balanced cost = %v, want 0", got)
	}
}

// driftedTree hand-builds the shape where an amortized move strictly beats
// greedy removal at zero wrap slack: a bushy 4-member subtree on the
// root's left flank (removing one of its members does not splice depth
// away) and a deep degree-2 caterpillar chain on the right (members at
// depths 2..chain+1). When a batch departs one bush member and one chain-
// bottom member, the chain's path is already departure-dirty, so
// relocating the remaining bottom member into the bush hole shortens the
// chain by an extra level, skips one child wrap (the hole's parent gains
// an all-joiner child), and strictly lowers the expected cost — something
// no greedy removal order can do. The tree is built greedily (no
// planner), snapshotted, and restored with the planner so it meets the
// drifted shape cold.
func driftedTree(tb testing.TB, chain int, cfg PlannerConfig) (*Tree, MemberID, MemberID) {
	tb.Helper()
	tr, err := New(2, WithRand(keycrypt.NewDeterministicReader(77)))
	if err != nil {
		tb.Fatal(err)
	}
	mint := func() keycrypt.Key {
		k, err := tr.freshKey()
		if err != nil {
			tb.Fatal(err)
		}
		return k
	}
	mkLeaf := func(m MemberID, parent *Node) *Node {
		leaf := &Node{key: mint(), parent: parent, member: m, leaves: 1}
		tr.leaves[m] = leaf
		return leaf
	}
	// 4 bush members + chain members (one per interior plus a second at
	// the bottom) hang off the root.
	root := &Node{key: mint(), leaves: 4 + chain}
	tr.root = root
	bush := &Node{key: mint(), parent: root, leaves: 4}
	for i := 0; i < 2; i++ {
		pair := &Node{key: mint(), parent: bush, leaves: 2}
		pair.children = []*Node{mkLeaf(MemberID(2*i+1), pair), mkLeaf(MemberID(2*i+2), pair)}
		bush.children = append(bush.children, pair)
	}
	spine := root
	next := MemberID(5)
	for k := 1; k < chain; k++ {
		r := &Node{key: mint(), parent: spine, leaves: chain + 1 - k}
		if spine == root {
			spine.children = []*Node{bush, r}
		} else {
			spine.children = append(spine.children, r)
		}
		r.children = []*Node{mkLeaf(next, r)}
		next++
		spine = r
	}
	// The deepest interior holds the last two chain members side by side.
	spine.children = append(spine.children, mkLeaf(next, spine))
	bottom := next
	blob, err := tr.Snapshot()
	if err != nil {
		tb.Fatal(err)
	}
	restored, err := Restore(blob, WithRand(keycrypt.NewDeterministicReader(78)), WithPlanner(cfg))
	if err != nil {
		tb.Fatal(err)
	}
	return restored, bottom - 1, bottom
}

// TestRebalancerMovesUnderDrift puts the planner in front of a drifted
// tree and verifies that a hole-rich batch schedules amortized moves at
// zero wrap slack, beats greedy on both realized wraps and expected cost,
// and gives every moved member a LeafRefresh bridge onto its new leaf key.
func TestRebalancerMovesUnderDrift(t *testing.T) {
	const chain = 7
	cfg := PlannerConfig{DriftFactor: 1.05, MaxMovesPerBatch: 2}
	tr, bottomA, _ := driftedTree(t, chain, cfg)
	if drift := tr.CostDrift(2); drift < cfg.DriftFactor {
		t.Fatalf("drifted tree drift %.4f below trigger %.4f", drift, cfg.DriftFactor)
	}

	// One bush member and one chain-bottom member depart: the bush hole is
	// shallow and splice-free, and the chain path is already dirty, so a
	// move of the surviving bottom member is wrap-neutral-or-better.
	b := Batch{Leaves: []MemberID{1, bottomA}}
	gp, clone := greedyOracle(t, tr, b)
	p, err := tr.Rekey(b)
	if err != nil {
		t.Fatal(err)
	}
	checkPlacement(t, tr, b, p)
	if len(p.Placement.Moves) == 0 {
		t.Fatalf("no rebalance moves on drifted tree (drift %.4f)", clone.CostDrift(2))
	}
	if pw, gw := p.MulticastKeyCount(), gp.MulticastKeyCount(); pw > gw+0 {
		t.Fatalf("moves exceeded wrap slack: planner %d wraps, greedy %d", pw, gw)
	}
	if pc, gc := tr.ExpectedRekeyCost(2), clone.ExpectedRekeyCost(2); pc >= gc {
		t.Fatalf("moves did not improve expected cost: planner %.4f, greedy %.4f", pc, gc)
	}
	for _, mv := range p.Placement.Moves {
		var bridge *Item
		for j := range p.JoinerItems {
			it := &p.JoinerItems[j]
			if it.Kind == LeafRefresh && len(it.Receivers) == 1 && it.Receivers[0] == mv.Member {
				bridge = it
			}
		}
		if bridge == nil {
			t.Fatalf("move of member %d emitted no LeafRefresh bridge", mv.Member)
		}
		leaf, err := tr.Leaf(mv.Member)
		if err != nil {
			t.Fatal(err)
		}
		if bridge.Wrapped.PayloadID != leaf.Key().ID {
			t.Fatalf("bridge wraps key %v, mover leaf is %v", bridge.Wrapped.PayloadID, leaf.Key().ID)
		}
	}
}

// FuzzPlanBatch fuzzes the planner end to end: a seeded tree receives an
// arbitrary batch; the plan must validate, apply cleanly, realize exactly
// its predicted wrap count, and leave the tree structurally sound.
func FuzzPlanBatch(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(3), uint8(9), uint8(1))
	f.Add(int64(7), uint8(50), uint8(9), uint8(2), uint8(0))
	f.Add(int64(42), uint8(5), uint8(0), uint8(5), uint8(2))
	f.Add(int64(99), uint8(33), uint8(8), uint8(8), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, initial, nJoin, nLeave, degSel uint8) {
		degree := 2 + int(degSel%4)
		tr, err := New(degree,
			WithRand(keycrypt.NewDeterministicReader(uint64(seed))),
			WithPlanner(PlannerConfig{DriftFactor: 1.05, MoveWrapSlack: int(degSel % 3)}))
		if err != nil {
			t.Fatal(err)
		}
		next := MemberID(1)
		var present []MemberID
		prime := Batch{}
		for i := 0; i < int(initial); i++ {
			prime.Joins = append(prime.Joins, next)
			present = append(present, next)
			next++
		}
		if len(prime.Joins) > 0 {
			if _, err := tr.Rekey(prime); err != nil {
				t.Fatal(err)
			}
		}
		// A couple of warm-up churn rounds so the tree shape is nontrivial.
		rnd := rand.New(rand.NewSource(seed))
		for r := 0; r < 2 && len(present) > 2; r++ {
			rnd.Shuffle(len(present), func(i, j int) { present[i], present[j] = present[j], present[i] })
			k := rnd.Intn(len(present) / 2)
			b := Batch{Leaves: append([]MemberID(nil), present[:k]...)}
			present = present[k:]
			if _, err := tr.Rekey(b); err != nil {
				t.Fatal(err)
			}
		}

		b := Batch{}
		nl := int(nLeave)
		if nl > len(present) {
			nl = len(present)
		}
		rnd.Shuffle(len(present), func(i, j int) { present[i], present[j] = present[j], present[i] })
		b.Leaves = append(b.Leaves, present[:nl]...)
		for i := 0; i < int(nJoin); i++ {
			b.Joins = append(b.Joins, next)
			next++
		}
		if b.IsEmpty() && tr.Size() == 0 {
			return
		}

		plan, err := tr.PlanBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.validatePlan(b, plan); err != nil {
			t.Fatalf("planner emitted invalid plan: %v", err)
		}
		p, err := tr.Rekey(b)
		if err != nil {
			t.Fatalf("planned batch failed to apply: %v", err)
		}
		checkPlacement(t, tr, b, p)

		// Structural soundness: member count, leaf bookkeeping, reachability.
		wantSize := len(present) - nl + int(nJoin)
		if tr.Size() != wantSize {
			t.Fatalf("tree size %d, want %d", tr.Size(), wantSize)
		}
		if tr.Root() != nil {
			if got := tr.Root().Leaves(); got != wantSize {
				t.Fatalf("root leaf count %d, want %d", got, wantSize)
			}
			count := 0
			walk(tr.Root(), func(n *Node) {
				if n.IsLeaf() {
					count++
					if n.Member() == 0 {
						t.Fatal("interior-free leaf without member")
					}
				} else if len(n.Children()) < 2 {
					t.Fatalf("interior node with %d children survived", len(n.Children()))
				}
			})
			if count != wantSize {
				t.Fatalf("walk found %d leaves, want %d", count, wantSize)
			}
		}
	})
}
