// Package keytree implements the logical key hierarchy (LKH) data structure
// used by scalable group-rekeying schemes (Wallner et al., Wong et al.).
//
// A Tree is a d-ary hierarchy of symmetric keys maintained by the key server.
// Leaves are individual keys shared between one member and the server;
// interior nodes are auxiliary key-encryption keys; the root is the subtree's
// group key (or, when the tree is used as a partition, the partition key).
// Every member holds exactly the keys on the path from its leaf to the root,
// so a membership change invalidates one root-to-leaf path.
//
// The package supports both immediate (per-event) rekeying and periodic
// batched rekeying (Setia et al., Yang et al.): joins, leaves and migrations
// accumulated over a rekey interval are applied in one pass, and overlapping
// path updates are paid for once. Rekey payloads follow group-oriented
// rekeying: each updated key is encrypted under each of its children.
package keytree

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"

	"groupkey/internal/keycrypt"
)

// MemberID identifies a group member. IDs are assigned by the caller
// (typically the key server's registration path) and must be nonzero.
type MemberID uint64

// Tree errors.
var (
	ErrMemberExists     = errors.New("keytree: member already present")
	ErrMemberUnknown    = errors.New("keytree: no such member")
	ErrInvalidDegree    = errors.New("keytree: tree degree must be at least 2")
	ErrZeroMember       = errors.New("keytree: member ID must be nonzero")
	ErrEmptyTree        = errors.New("keytree: tree is empty")
	ErrBatchConflict    = errors.New("keytree: member appears in conflicting batch operations")
	ErrExhaustedEntropy = errors.New("keytree: key generation failed")
	ErrInvalidPlan      = errors.New("keytree: placement plan does not cover the batch")
)

// Node is one key slot in the hierarchy. Interior nodes hold auxiliary keys;
// leaf nodes hold member individual keys and carry a nonzero Member field.
type Node struct {
	key      keycrypt.Key
	parent   *Node
	children []*Node
	member   MemberID // nonzero iff leaf representing a member
	leaves   int      // number of member leaves in this subtree
}

// Key returns the node's current key.
func (n *Node) Key() keycrypt.Key { return n.key }

// Member returns the member occupying the leaf, or zero for interior nodes.
func (n *Node) Member() MemberID { return n.member }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// Leaves returns the number of member leaves under the node.
func (n *Node) Leaves() int { return n.leaves }

// Children returns the node's children slice. Callers must not mutate it.
func (n *Node) Children() []*Node { return n.children }

// Depth returns the number of edges from the root to this node.
func (n *Node) Depth() int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Tree is a d-ary logical key tree. It is not safe for concurrent use; the
// key server serializes access (see internal/core). Rekey internally fans
// wrap emission out over a worker pool (see WithWrapWorkers), but all tree
// mutation stays on the calling goroutine.
type Tree struct {
	degree int
	root   *Node
	leaves map[MemberID]*Node
	gen    keycrypt.Generator
	nextID keycrypt.KeyID

	// wrapper caches AES key schedules across rekeys; wrapWorkers sizes
	// the emission pool (0 = GOMAXPROCS); legacyRekey forces the serial
	// pre-engine emitter kept as a baseline oracle.
	wrapper     *keycrypt.Wrapper
	wrapWorkers int
	legacyRekey bool

	// planner, when set, chooses each batch's placement (see planner.go);
	// nil applies the greedy pairing.
	planner      *planner
	plannerStats PlannerStats

	// stats accumulated across the tree's lifetime.
	stats Stats
}

// Stats counts work done by a tree across its lifetime. All counters are
// monotone.
type Stats struct {
	Joins         int // members added
	Departures    int // members removed
	KeysWrapped   int // encrypted keys emitted in rekey payloads
	KeysRefreshed int // key slots given fresh material
	Rekeys        int // batch rekey operations executed
}

// Option configures a Tree.
type Option func(*Tree)

// WithRand sets the entropy source used to mint keys. nil (the default)
// means crypto/rand. Simulations inject keycrypt.NewDeterministicReader for
// reproducibility.
func WithRand(r io.Reader) Option {
	return func(t *Tree) { t.gen.Rand = r }
}

// WithFirstKeyID sets the first key ID the tree allocates. Multi-tree
// schemes give each tree a disjoint ID space.
func WithFirstKeyID(id keycrypt.KeyID) Option {
	return func(t *Tree) { t.nextID = id }
}

// WithWrapWorkers sets how many goroutines Rekey uses to emit AES-GCM
// wraps. n <= 0 (the default) resolves to runtime.GOMAXPROCS(0); n == 1
// emits inline on the calling goroutine. Payload bytes are identical for
// every worker count: nonces are drawn in canonical order during the
// single-threaded planning pass and results land in pre-assigned slots.
func WithWrapWorkers(n int) Option {
	return func(t *Tree) {
		if n < 0 {
			n = 0
		}
		t.wrapWorkers = n
	}
}

// WithLegacyRekey routes Rekey through the pre-engine serial emitter (one
// keycrypt.Wrap per item, no planning pass, no schedule reuse across a
// node's wraps). It exists as the baseline oracle: determinism tests assert
// the engine's payloads are byte-identical to it, and `lkhbench -exp perf`
// measures the engine's speedup against it.
func WithLegacyRekey() Option {
	return func(t *Tree) { t.legacyRekey = true }
}

// WithPlanner enables the batch placement planner (see planner.go): each
// Rekey enumerates candidate hole assignments, insertion anchors, and
// rebalance moves, and applies the one minimizing realized wraps plus the
// marginal ExpectedRekeyCost, with the greedy pairing as fallback.
// Planning is deterministic given the tree shape and batch, so replayed
// logs rebuild byte-identical payloads.
func WithPlanner(cfg PlannerConfig) Option {
	return func(t *Tree) { t.planner = &planner{cfg: cfg.normalized()} }
}

// PlannerStats counts the batch placement planner's lifetime activity.
type PlannerStats struct {
	// Enabled reports whether the tree runs the planner at all.
	Enabled bool
	// PlannedBatches counts batches where a non-greedy plan won.
	PlannedBatches int
	// GreedyFallbacks counts batches the planner evaluated but kept the
	// greedy plan (dominance guard or scoring).
	GreedyFallbacks int
	// Moves counts amortized rebalance relocations executed.
	Moves int
	// SavedWraps accumulates the simulated multicast wraps saved versus
	// the greedy baseline across all planned batches.
	SavedWraps int
}

// Add merges two counters (multi-tree schemes aggregate across trees).
func (s PlannerStats) Add(o PlannerStats) PlannerStats {
	return PlannerStats{
		Enabled:         s.Enabled || o.Enabled,
		PlannedBatches:  s.PlannedBatches + o.PlannedBatches,
		GreedyFallbacks: s.GreedyFallbacks + o.GreedyFallbacks,
		Moves:           s.Moves + o.Moves,
		SavedWraps:      s.SavedWraps + o.SavedWraps,
	}
}

// PlannerStats returns the planner's lifetime counters.
func (t *Tree) PlannerStats() PlannerStats {
	s := t.plannerStats
	s.Enabled = t.planner != nil
	return s
}

// PlannerEnabled reports whether the batch placement planner is active.
func (t *Tree) PlannerEnabled() bool { return t.planner != nil }

// TunePlanner updates the planner's churn hint — the departure count l
// that ExpectedRekeyCost scoring assumes — from a live churn estimate
// (l ≤ 0 restores per-batch derivation). No-op without WithPlanner.
// Because the hint changes payload-affecting decisions, durable
// deployments must only tune it through configuration that replays with
// the log, never from runtime estimates.
func (t *Tree) TunePlanner(churnHint int) {
	if t.planner == nil {
		return
	}
	if churnHint < 0 {
		churnHint = 0
	}
	t.planner.cfg.ChurnHint = churnHint
}

// New creates an empty key tree of the given degree (fan-out d ≥ 2).
func New(degree int, opts ...Option) (*Tree, error) {
	if degree < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidDegree, degree)
	}
	t := &Tree{
		degree:  degree,
		leaves:  make(map[MemberID]*Node),
		nextID:  1,
		wrapper: keycrypt.NewWrapper(),
	}
	for _, o := range opts {
		o(t)
	}
	return t, nil
}

// WrapWorkers returns the resolved wrap-emission worker count.
func (t *Tree) WrapWorkers() int {
	if t.wrapWorkers > 0 {
		return t.wrapWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Degree returns the tree fan-out d.
func (t *Tree) Degree() int { return t.degree }

// Size returns the number of members in the tree.
func (t *Tree) Size() int { return len(t.leaves) }

// Root returns the root node, or nil when the tree is empty. When the tree
// hosts a whole group, the root key is the data-encryption key; when it
// hosts a partition, the root key is the partition key.
func (t *Tree) Root() *Node { return t.root }

// RootKey returns the current root key.
func (t *Tree) RootKey() (keycrypt.Key, error) {
	if t.root == nil {
		return keycrypt.Key{}, ErrEmptyTree
	}
	return t.root.key, nil
}

// Stats returns lifetime counters.
func (t *Tree) Stats() Stats { return t.stats }

// RefreshRoot replaces the root key with fresh material at the next
// version without touching the rest of the tree — the primitive behind
// scheduled group-key rotation.
func (t *Tree) RefreshRoot() error {
	if t.root == nil {
		return ErrEmptyTree
	}
	return t.refresh(t.root)
}

// Rand exposes the tree's entropy source so callers can wrap keys with the
// same (possibly deterministic) randomness the tree uses.
func (t *Tree) Rand() io.Reader { return t.gen.Rand }

// Height returns the number of edges on the longest root-to-leaf path.
// An empty tree has height -1; a single leaf has height 0.
func (t *Tree) Height() int {
	return height(t.root)
}

func height(n *Node) int {
	if n == nil {
		return -1
	}
	h := 0
	for _, c := range n.children {
		if ch := height(c) + 1; ch > h {
			h = ch
		}
	}
	return h
}

// Contains reports whether the member is present.
func (t *Tree) Contains(m MemberID) bool {
	_, ok := t.leaves[m]
	return ok
}

// Members returns all member IDs in ascending order.
func (t *Tree) Members() []MemberID {
	out := make([]MemberID, 0, len(t.leaves))
	for m := range t.leaves {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaf returns the leaf node of a member.
func (t *Tree) Leaf(m MemberID) (*Node, error) {
	n, ok := t.leaves[m]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrMemberUnknown, m)
	}
	return n, nil
}

// Path returns the keys a member holds: its individual key first, then each
// ancestor key up to and including the root.
func (t *Tree) Path(m MemberID) ([]keycrypt.Key, error) {
	leaf, err := t.Leaf(m)
	if err != nil {
		return nil, err
	}
	var keys []keycrypt.Key
	for n := leaf; n != nil; n = n.parent {
		keys = append(keys, n.key)
	}
	return keys, nil
}

// freshKey mints a new key for a brand-new slot.
func (t *Tree) freshKey() (keycrypt.Key, error) {
	id := t.nextID
	t.nextID++
	k, err := t.gen.New(id, 0)
	if err != nil {
		return keycrypt.Key{}, fmt.Errorf("%w: %v", ErrExhaustedEntropy, err)
	}
	t.stats.KeysRefreshed++
	return k, nil
}

// refresh replaces a node's key with fresh material at the next version.
func (t *Tree) refresh(n *Node) error {
	k, err := t.gen.Refresh(n.key)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrExhaustedEntropy, err)
	}
	n.key = k
	t.stats.KeysRefreshed++
	return nil
}

// removeLeaf detaches the member's leaf and splices out any interior node
// left with a single child. It returns the lowest surviving ancestor whose
// key set is compromised by the departure (nil when the tree became empty).
func (t *Tree) removeLeaf(m MemberID) (*Node, error) {
	leaf, ok := t.leaves[m]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrMemberUnknown, m)
	}
	delete(t.leaves, m)

	parent := leaf.parent
	if parent == nil {
		t.root = nil
		return nil, nil
	}
	removeChild(parent, leaf)
	leaf.parent = nil
	for p := parent; p != nil; p = p.parent {
		p.leaves--
	}
	if len(parent.children) == 1 {
		// Splice: promote the only remaining child into the parent's slot,
		// and fully detach the spliced node — batch processing tests
		// reachability through parent pointers.
		only := parent.children[0]
		grand := parent.parent
		parent.parent, parent.children = nil, nil
		if grand == nil {
			only.parent = nil
			t.root = only
			return only, nil
		}
		replaceChild(grand, parent, only)
		only.parent = grand
		return grand, nil
	}
	return parent, nil
}

func replaceChild(parent, old, new *Node) {
	for i, c := range parent.children {
		if c == old {
			parent.children[i] = new
			return
		}
	}
	panic("keytree: replaceChild: old node not a child of parent")
}

func removeChild(parent, child *Node) {
	for i, c := range parent.children {
		if c == child {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			return
		}
	}
	panic("keytree: removeChild: node not a child of parent")
}

// walk visits every node in the subtree rooted at n in pre-order.
func walk(n *Node, visit func(*Node)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.children {
		walk(c, visit)
	}
}
