package keytree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"groupkey/internal/keycrypt"
)

// Snapshot serializes the complete key-tree state — structure, key
// material, ID allocator and counters — so a key server can persist its
// state across restarts without forcing a whole-group rekey.
//
// The snapshot contains every secret in the tree. Callers own
// encryption-at-rest (e.g. seal the blob under a KMS-held master key).

// ErrBadSnapshot reports a malformed or truncated snapshot.
var ErrBadSnapshot = errors.New("keytree: malformed snapshot")

// snapshot format constants.
const (
	snapMagic   = "LKHT"
	snapVersion = 1
)

// Snapshot serializes the tree.
func (t *Tree) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	writeU32(&buf, snapVersion)
	writeU32(&buf, uint32(t.degree))
	writeU64(&buf, uint64(t.nextID))
	for _, v := range []int{t.stats.Joins, t.stats.Departures, t.stats.KeysWrapped, t.stats.KeysRefreshed, t.stats.Rekeys} {
		writeU64(&buf, uint64(v))
	}
	if t.root == nil {
		writeU32(&buf, 0)
		return buf.Bytes(), nil
	}
	writeU32(&buf, 1)
	var write func(n *Node) error
	write = func(n *Node) error {
		writeU64(&buf, uint64(n.key.ID))
		writeU32(&buf, uint32(n.key.Version))
		buf.Write(n.key.Bytes())
		writeU64(&buf, uint64(n.member))
		if len(n.children) > 255 {
			return fmt.Errorf("keytree: node fan-out %d unserializable", len(n.children))
		}
		buf.WriteByte(byte(len(n.children)))
		for _, c := range n.children {
			if err := write(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(t.root); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore rebuilds a tree from a snapshot. Options (entropy source, ID
// base) apply on top of the restored state; WithFirstKeyID is ignored in
// favor of the snapshot's allocator position.
func Restore(snapshot []byte, opts ...Option) (*Tree, error) {
	r := &snapReader{data: snapshot}
	if string(r.bytes(4)) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := r.u32(); v != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, v)
	}
	degree := int(r.u32())
	if degree < 2 || degree > 255 {
		return nil, fmt.Errorf("%w: degree %d", ErrBadSnapshot, degree)
	}
	t, err := New(degree, opts...)
	if err != nil {
		return nil, err
	}
	t.nextID = keycrypt.KeyID(r.u64())
	t.stats.Joins = int(r.u64())
	t.stats.Departures = int(r.u64())
	t.stats.KeysWrapped = int(r.u64())
	t.stats.KeysRefreshed = int(r.u64())
	t.stats.Rekeys = int(r.u64())

	hasRoot := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	if hasRoot == 0 {
		return t, nil
	}

	var read func(depth int) (*Node, error)
	read = func(depth int) (*Node, error) {
		if depth > 64 {
			return nil, fmt.Errorf("%w: tree deeper than 64 levels", ErrBadSnapshot)
		}
		id := keycrypt.KeyID(r.u64())
		version := keycrypt.Version(r.u32())
		material := r.bytes(keycrypt.KeySize)
		memberID := MemberID(r.u64())
		childCount := int(r.u8())
		if r.err != nil {
			return nil, fmt.Errorf("%w: truncated node", ErrBadSnapshot)
		}
		key, err := keycrypt.NewKey(id, version, material)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		n := &Node{key: key, member: memberID}
		if childCount == 0 {
			if memberID == 0 {
				return nil, fmt.Errorf("%w: leaf without member", ErrBadSnapshot)
			}
			if _, dup := t.leaves[memberID]; dup {
				return nil, fmt.Errorf("%w: duplicate member %d", ErrBadSnapshot, memberID)
			}
			n.leaves = 1
			t.leaves[memberID] = n
			return n, nil
		}
		if memberID != 0 {
			return nil, fmt.Errorf("%w: interior node carries member %d", ErrBadSnapshot, memberID)
		}
		if childCount > degree || childCount < 2 {
			return nil, fmt.Errorf("%w: fan-out %d outside [2,%d]", ErrBadSnapshot, childCount, degree)
		}
		for i := 0; i < childCount; i++ {
			c, err := read(depth + 1)
			if err != nil {
				return nil, err
			}
			c.parent = n
			n.children = append(n.children, c)
			n.leaves += c.leaves
		}
		return n, nil
	}
	root, err := read(0)
	if err != nil {
		return nil, err
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, r.rest())
	}
	t.root = root
	return t, nil
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

// snapReader is a bounds-checked sequential reader.
type snapReader struct {
	data []byte
	off  int
	err  error
}

func (r *snapReader) bytes(n int) []byte {
	if r.err != nil || r.off+n > len(r.data) {
		r.err = ErrBadSnapshot
		return make([]byte, n)
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

func (r *snapReader) u8() uint8   { return r.bytes(1)[0] }
func (r *snapReader) u32() uint32 { return binary.BigEndian.Uint32(r.bytes(4)) }
func (r *snapReader) u64() uint64 { return binary.BigEndian.Uint64(r.bytes(8)) }
func (r *snapReader) rest() int   { return len(r.data) - r.off }
