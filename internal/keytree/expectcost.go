package keytree

import (
	"groupkey/internal/analytic"
)

// This file computes the exact expected batched-rekey cost of a concrete
// tree shape — the "simple extension to partially full key trees" the
// paper's Appendix A alludes to. Where the closed-form model assumes a
// full balanced tree with d^i keys per level, these methods walk the real
// tree and sum per-node update probabilities, so they remain exact for
// any shape the server's insertion policy produced.

// ExpectedRekeyCost returns the expected number of multicast encrypted
// keys for a batch of l uniformly random departures (with l joiners
// re-filling the vacated leaves — the J = L replacement regime). Every
// interior node v with s_v member leaves beneath it is updated with
// probability 1 − C(N−s_v, l)/C(N, l) and then wrapped under each child
// that still has a non-joiner receiver — a child whose entire subtree was
// replaced gets its keys through the joiners' bootstrap path instead, so
// that wrap is never multicast:
//
//	E[wraps] = Σ_v Σ_{c ∈ children(v)} ( P[v updated] − P[all of c departed] ).
func (t *Tree) ExpectedRekeyCost(l int) float64 {
	n := float64(t.Size())
	if n <= 1 || l <= 0 {
		return 0
	}
	lf := float64(l)
	if lf > n {
		lf = n
	}
	total := 0.0
	walk(t.root, func(v *Node) {
		if v.IsLeaf() {
			return
		}
		pUpdate := 1 - analytic.ChooseRatio(n, float64(v.leaves), lf)
		for _, c := range v.children {
			contribution := pUpdate - analytic.AllChosenProb(n, float64(c.leaves), lf)
			if contribution > 0 {
				total += contribution
			}
		}
	})
	return total
}

// ExpectedRekeyCost is the OFT analogue: an updated non-root node costs one
// blinded-key transmission (to its sibling's subtree), and each of the l
// replaced leaves costs one blind of its fresh secret. The root's blind is
// never transmitted. This makes concrete the paper's Section 2.1.1 remark
// that the optimizations carry over to one-way function trees — at roughly
// half the LKH payload for binary trees.
func (t *OFT) ExpectedRekeyCost(l int) float64 {
	n := float64(t.Size())
	if n <= 1 || l <= 0 {
		return 0
	}
	lf := float64(l)
	if lf > n {
		lf = n
	}
	total := float64(l) // one leaf blind per replaced leaf
	var visit func(v *oftNode)
	visit = func(v *oftNode) {
		if v == nil || v.isLeaf() {
			return
		}
		if v.parent != nil { // the root's blind is never sent
			p := 1 - analytic.ChooseRatio(n, float64(v.leaves), lf)
			total += p
		}
		visit(v.left)
		visit(v.right)
	}
	visit(t.root)
	return total
}
