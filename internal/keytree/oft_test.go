package keytree

import (
	"errors"
	"math"
	"testing"

	"groupkey/internal/keycrypt"
)

// oftHarness drives an OFT together with real member-side state and
// verifies the cryptographic contract after every batch.
type oftHarness struct {
	t       *testing.T
	tree    *OFT
	clients map[MemberID]*OFTMember
}

func newOFTHarness(t *testing.T, seed uint64) *oftHarness {
	t.Helper()
	tree, err := NewOFT(WithRand(keycrypt.NewDeterministicReader(seed)))
	if err != nil {
		t.Fatalf("NewOFT: %v", err)
	}
	return &oftHarness{t: t, tree: tree, clients: make(map[MemberID]*OFTMember)}
}

func (h *oftHarness) process(b Batch) *OFTPayload {
	h.t.Helper()
	p, err := h.tree.Rekey(b)
	if err != nil {
		h.t.Fatalf("OFT Rekey: %v", err)
	}

	// Departed members must gain nothing and lose the group key.
	for _, m := range b.Leaves {
		c := h.clients[m]
		if c == nil {
			h.t.Fatalf("harness out of sync: no client for %d", m)
		}
		if used := c.Apply(p); used != 0 {
			h.t.Fatalf("departed member %d consumed %d payload items", m, used)
		}
		delete(h.clients, m)
	}

	// Joiners bootstrap from their leaf secret alone.
	for _, m := range b.Joins {
		secret, err := h.tree.LeafSecret(m)
		if err != nil {
			h.t.Fatalf("LeafSecret(%d): %v", m, err)
		}
		h.clients[m] = NewOFTMember(m, secret)
	}

	// Everyone applies and must compute the server's group key.
	for id, c := range h.clients {
		c.Apply(p)
		if h.tree.Size() == 0 {
			continue
		}
		want, err := h.tree.GroupKey()
		if err != nil {
			h.t.Fatalf("GroupKey: %v", err)
		}
		got, ok := c.GroupKey()
		if !ok {
			h.t.Fatalf("member %d cannot compute the group key after batch %+v", id, b)
		}
		if !got.Equal(want) {
			h.t.Fatalf("member %d computed group key %v, server has %v", id, got, want)
		}
	}

	// Departed members must not compute the new group key.
	if h.tree.Size() > 0 {
		want, _ := h.tree.GroupKey()
		for _, m := range b.Leaves {
			_ = m // clients already deleted; checked via Apply==0 above
		}
		_ = want
	}
	return p
}

func ids(ns ...int) []MemberID {
	out := make([]MemberID, len(ns))
	for i, n := range ns {
		out[i] = MemberID(n)
	}
	return out
}

func TestOFTSingleMember(t *testing.T) {
	h := newOFTHarness(t, 1)
	h.process(Batch{Joins: ids(1)})
	if h.tree.Size() != 1 || h.tree.Height() != 0 {
		t.Fatalf("size=%d height=%d, want 1/0", h.tree.Size(), h.tree.Height())
	}
	gk, err := h.tree.GroupKey()
	if err != nil {
		t.Fatalf("GroupKey: %v", err)
	}
	got, ok := h.clients[1].GroupKey()
	if !ok || !got.Equal(gk) {
		t.Fatal("singleton member disagrees on group key")
	}
}

func TestOFTGrowAndAgree(t *testing.T) {
	h := newOFTHarness(t, 2)
	h.process(Batch{Joins: ids(1, 2, 3, 4, 5, 6, 7, 8)})
	if h.tree.Size() != 8 {
		t.Fatalf("size=%d, want 8", h.tree.Size())
	}
	// Balanced growth: 8 members in a binary tree should reach height 3.
	if h.tree.Height() != 3 {
		t.Fatalf("height=%d, want 3", h.tree.Height())
	}
	// Incremental joins agree too.
	h.process(Batch{Joins: ids(9)})
	h.process(Batch{Joins: ids(10, 11)})
	if h.tree.Size() != 11 {
		t.Fatalf("size=%d, want 11", h.tree.Size())
	}
}

func TestOFTDepartureForwardSecrecy(t *testing.T) {
	h := newOFTHarness(t, 3)
	h.process(Batch{Joins: ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)})
	departing := h.clients[5]
	oldGK, _ := h.tree.GroupKey()

	p := h.process(Batch{Leaves: ids(5)})
	newGK, _ := h.tree.GroupKey()
	if newGK.Equal(oldGK) {
		t.Fatal("group key unchanged after departure")
	}
	// The harness already asserted Apply(p)==0 for the departed member;
	// double-check it cannot compute the new root even with the payload.
	departing.Apply(p)
	if got, ok := departing.GroupKey(); ok && got.Equal(newGK) {
		t.Fatal("departed member computed the new group key")
	}
}

func TestOFTJoinBackwardSecrecy(t *testing.T) {
	h := newOFTHarness(t, 4)
	h.process(Batch{Joins: ids(1, 2, 3, 4)})
	oldGK, _ := h.tree.GroupKey()

	h.process(Batch{Joins: ids(5)})
	joiner := h.clients[5]
	if joiner.Has(oldGK) {
		t.Fatal("joiner computed the pre-join group key")
	}
}

func TestOFTReplacementKeepsShape(t *testing.T) {
	h := newOFTHarness(t, 5)
	h.process(Batch{Joins: ids(1, 2, 3, 4, 5, 6, 7, 8)})
	height := h.tree.Height()
	h.process(Batch{Joins: ids(101, 102), Leaves: ids(2, 7)})
	if h.tree.Size() != 8 {
		t.Fatalf("size=%d, want 8", h.tree.Size())
	}
	if h.tree.Height() != height {
		t.Fatalf("J=L rekey changed height %d -> %d", height, h.tree.Height())
	}
}

func TestOFTDepartureCostHalvesLKH(t *testing.T) {
	// The OFT selling point: one blinded key per level instead of LKH's
	// two child wraps per level (binary trees).
	const n = 64
	// LKH baseline at degree 2.
	lkh := newTestTree(t, 2, 60)
	populate(t, lkh, n)
	lp, err := lkh.Rekey(Batch{Leaves: []MemberID{30}})
	if err != nil {
		t.Fatalf("LKH Rekey: %v", err)
	}
	// OFT.
	h := newOFTHarness(t, 61)
	joins := Batch{}
	for i := 1; i <= n; i++ {
		joins.Joins = append(joins.Joins, MemberID(i))
	}
	h.process(joins)
	op := h.process(Batch{Leaves: ids(30)})

	lkhCost := lp.MulticastKeyCount()
	oftCost := op.MulticastKeyCount()
	if oftCost >= lkhCost {
		t.Fatalf("OFT departure cost %d not below LKH-binary cost %d", oftCost, lkhCost)
	}
	// Roughly h+1 items vs 2(h-1): allow slack for the splice but demand a
	// real reduction.
	if float64(oftCost) > 0.8*float64(lkhCost) {
		t.Fatalf("OFT cost %d should be well below LKH %d (paper: about half)", oftCost, lkhCost)
	}
}

func TestOFTBatchedDeparturesShareCost(t *testing.T) {
	// Path sharing in OFT happens when the departures are close in the
	// tree (distant leaves share only the root, whose blind is never
	// transmitted), so evict two leaves that are siblings.
	build := func() *oftHarness {
		h := newOFTHarness(t, 62)
		b := Batch{}
		for i := 1; i <= 128; i++ {
			b.Joins = append(b.Joins, MemberID(i))
		}
		h.process(b)
		return h
	}
	siblings := func(h *oftHarness) (MemberID, MemberID) {
		for m, leaf := range h.tree.leaves {
			if sib := leaf.sibling(); sib != nil && sib.isLeaf() {
				return m, sib.member
			}
		}
		t.Fatal("no sibling leaf pair in a 128-member tree")
		return 0, 0
	}

	solo := build()
	a, b := siblings(solo)
	p1 := solo.process(Batch{Leaves: []MemberID{a}})
	p2 := solo.process(Batch{Leaves: []MemberID{b}})
	sum := p1.MulticastKeyCount() + p2.MulticastKeyCount()

	batched := build()
	a2, b2 := siblings(batched)
	pb := batched.process(Batch{Leaves: []MemberID{a2, b2}})
	if pb.MulticastKeyCount() >= sum {
		t.Fatalf("batched sibling departures cost %d, not below sequential %d", pb.MulticastKeyCount(), sum)
	}
}

func TestOFTValidation(t *testing.T) {
	tree, err := NewOFT(WithRand(keycrypt.NewDeterministicReader(63)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Rekey(Batch{Leaves: ids(9)}); !errors.Is(err, ErrMemberUnknown) {
		t.Errorf("unknown leaver: err=%v", err)
	}
	if _, err := tree.Rekey(Batch{Joins: ids(1, 1)}); !errors.Is(err, ErrBatchConflict) {
		t.Errorf("duplicate join: err=%v", err)
	}
	if _, err := tree.Rekey(Batch{Joins: []MemberID{0}}); !errors.Is(err, ErrZeroMember) {
		t.Errorf("zero member: err=%v", err)
	}
	if _, err := tree.GroupKey(); !errors.Is(err, ErrEmptyTree) {
		t.Errorf("empty group key: err=%v", err)
	}
}

func TestOFTEmptyAfterAllLeave(t *testing.T) {
	h := newOFTHarness(t, 64)
	h.process(Batch{Joins: ids(1, 2, 3)})
	h.process(Batch{Leaves: ids(1, 2, 3)})
	if h.tree.Size() != 0 {
		t.Fatalf("size=%d, want 0", h.tree.Size())
	}
	// Reusable afterwards.
	h.process(Batch{Joins: ids(10, 11)})
	if h.tree.Size() != 2 {
		t.Fatalf("size=%d, want 2", h.tree.Size())
	}
}

func TestOFTChurnSoak(t *testing.T) {
	h := newOFTHarness(t, 65)
	next := 1
	var present []int
	rng := keycrypt.NewDeterministicReader(66)
	rb := func(n int) int {
		var b [1]byte
		rng.Read(b[:])
		return int(b[0]) % n
	}
	for epoch := 0; epoch < 40; epoch++ {
		b := Batch{}
		for i := 0; i < rb(5); i++ {
			b.Joins = append(b.Joins, MemberID(next))
			present = append(present, next)
			next++
		}
		for i := 0; i < rb(4) && len(present) > len(b.Joins); i++ {
			idx := rb(len(present))
			m := present[idx]
			skip := false
			for _, j := range b.Joins {
				if j == MemberID(m) {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			already := false
			for _, l := range b.Leaves {
				if l == MemberID(m) {
					already = true
					break
				}
			}
			if already {
				continue
			}
			b.Leaves = append(b.Leaves, MemberID(m))
			present = append(present[:idx], present[idx+1:]...)
		}
		h.process(b)
		if h.tree.Size() != len(present) {
			t.Fatalf("epoch %d: size=%d, want %d", epoch, h.tree.Size(), len(present))
		}
	}
	// The balanced insertion policy keeps height logarithmic.
	if n := h.tree.Size(); n > 2 {
		bound := int(2*math.Log2(float64(n))) + 2
		if h.tree.Height() > bound {
			t.Fatalf("height %d exceeds 2·log2(%d)+2 = %d", h.tree.Height(), n, bound)
		}
	}
}

func TestOFTStatsAccumulate(t *testing.T) {
	h := newOFTHarness(t, 67)
	h.process(Batch{Joins: ids(1, 2, 3, 4)})
	h.process(Batch{Leaves: ids(2)})
	s := h.tree.stats
	if s.Joins != 4 || s.Departures != 1 || s.Rekeys != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.KeysWrapped == 0 || s.KeysRefreshed == 0 {
		t.Fatal("key counters did not accumulate")
	}
}
