package keytree

import (
	"errors"
	"testing"

	"groupkey/internal/keycrypt"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	tr := newTestTree(t, 4, 90)
	populate(t, tr, 100)
	if _, err := tr.Rekey(Batch{Leaves: []MemberID{5, 50}}); err != nil {
		t.Fatal(err)
	}

	blob, err := tr.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	got, err := Restore(blob, WithRand(keycrypt.NewDeterministicReader(91)))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	checkInvariants(t, got)

	if got.Size() != tr.Size() || got.Degree() != tr.Degree() || got.Height() != tr.Height() {
		t.Fatalf("shape mismatch: size %d/%d degree %d/%d height %d/%d",
			got.Size(), tr.Size(), got.Degree(), tr.Degree(), got.Height(), tr.Height())
	}
	if got.Stats() != tr.Stats() {
		t.Fatalf("stats mismatch: %+v vs %+v", got.Stats(), tr.Stats())
	}
	// Every member's full key path survives byte-for-byte.
	for _, m := range tr.Members() {
		want, err := tr.Path(m)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Path(m)
		if err != nil {
			t.Fatalf("restored tree lost member %d: %v", m, err)
		}
		if len(want) != len(have) {
			t.Fatalf("member %d path length %d vs %d", m, len(have), len(want))
		}
		for i := range want {
			if !want[i].Equal(have[i]) {
				t.Fatalf("member %d path key %d differs", m, i)
			}
		}
	}

	// The restored tree keeps working: a rekey must not collide key IDs.
	p, err := got.Rekey(Batch{Joins: []MemberID{500}, Leaves: []MemberID{7}})
	if err != nil {
		t.Fatalf("Rekey after restore: %v", err)
	}
	if p.MulticastKeyCount() == 0 {
		t.Fatal("empty rekey after restore")
	}
	checkInvariants(t, got)
}

func TestSnapshotEmptyTree(t *testing.T) {
	tr := newTestTree(t, 4, 92)
	blob, err := tr.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	got, err := Restore(blob, WithRand(keycrypt.NewDeterministicReader(93)))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got.Size() != 0 {
		t.Fatalf("restored size %d, want 0", got.Size())
	}
	populate(t, got, 8)
	checkInvariants(t, got)
}

func TestRestoreRejectsCorruption(t *testing.T) {
	tr := newTestTree(t, 4, 94)
	populate(t, tr, 16)
	blob, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("XXXX"), blob[4:]...),
		"truncated":     blob[:len(blob)/2],
		"trailing junk": append(append([]byte{}, blob...), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := Restore(data); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err=%v, want ErrBadSnapshot", name, err)
		}
	}

	// Flip the version field.
	bad := append([]byte{}, blob...)
	bad[7] = 99
	if _, err := Restore(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("bad version: err=%v", err)
	}
}

func TestRestoreRejectsStructuralLies(t *testing.T) {
	// Hand-craft a snapshot whose interior node claims a member.
	tr := newTestTree(t, 4, 95)
	populate(t, tr, 4)
	blob, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Header: 4 magic + 4 version + 4 degree + 8 nextID + 5*8 stats + 4 hasRoot = 64.
	// Root node layout: id(8) ver(4) key(32) member(8) childCount(1).
	memberOff := 64 + 8 + 4 + 32
	bad := append([]byte{}, blob...)
	bad[memberOff+7] = 9 // root (interior) now claims member 9
	if _, err := Restore(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("interior-with-member: err=%v", err)
	}
}
