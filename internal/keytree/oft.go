package keytree

import (
	"fmt"
	"sort"

	"groupkey/internal/keycrypt"
)

// This file implements One-way Function Trees (OFT, Balenson–McGrew–
// Sherman), the alternative key-tree construction the paper names in
// Section 2.1.1 as equally amenable to its optimizations. Unlike LKH,
// interior keys are not chosen by the server: every interior key is
// *computed* as
//
//	k(v) = Mix(Blind(k(left)), Blind(k(right)))
//
// where Blind is a one-way function. A member stores its own leaf secret
// plus the blinded keys of the siblings along its path, and computes every
// path key — including the group key at the root — itself. A membership
// change therefore costs ONE blinded key per updated tree level (delivered
// to the sibling subtree), half of binary LKH's two.
//
// Versioning: a leaf's version bumps on every refresh; an interior node's
// version is the sum of its children's versions, so the server and every
// member derive identical (id, version, material) triples independently.

// OFTPathEntry describes one level of a member's path: the parent node
// reached, the sibling whose blinded key the member must hold, and the
// sibling's position (Mix is positional).
type OFTPathEntry struct {
	Parent        keycrypt.KeyID
	Sibling       keycrypt.KeyID
	SiblingOnLeft bool
}

// OFTPayload is the output of one batched OFT rekey.
type OFTPayload struct {
	// Items carry new blinded keys encrypted under subtree keys, leaf
	// refreshes encrypted under previous leaf secrets, and joiner
	// bootstrap blinds encrypted under joiner leaf secrets. The Item
	// format is shared with LKH so the reliable rekey transports deliver
	// OFT payloads unchanged.
	Items []Item
	// Paths re-synchronizes the path structure of members whose position
	// in the tree changed (joiners, split partners, members under spliced
	// or re-parented subtrees).
	Paths map[MemberID][]OFTPathEntry
}

// KeyCount returns the number of encrypted keys in the payload — the
// bandwidth metric comparable with LKH's Payload counts.
func (p *OFTPayload) KeyCount() int { return len(p.Items) }

type oftNode struct {
	id          keycrypt.KeyID
	parent      *oftNode
	left, right *oftNode
	secret      keycrypt.Key // leaf: stored; interior: Mix of children blinds
	member      MemberID     // nonzero iff leaf
	leaves      int
}

func (n *oftNode) isLeaf() bool { return n.left == nil && n.right == nil }

func (n *oftNode) sibling() *oftNode {
	if n.parent == nil {
		return nil
	}
	if n.parent.left == n {
		return n.parent.right
	}
	return n.parent.left
}

// OFT is a binary one-way function tree maintained by the key server. It
// is not safe for concurrent use.
type OFT struct {
	root   *oftNode
	leaves map[MemberID]*oftNode
	gen    keycrypt.Generator
	nextID keycrypt.KeyID
	stats  Stats
}

// NewOFT creates an empty one-way function tree.
func NewOFT(opts ...Option) (*OFT, error) {
	// Reuse the Tree options for entropy/ID-space injection.
	carrier := &Tree{nextID: 1}
	for _, o := range opts {
		o(carrier)
	}
	return &OFT{
		leaves: make(map[MemberID]*oftNode),
		gen:    carrier.gen,
		nextID: carrier.nextID,
	}, nil
}

// Size returns the number of members.
func (t *OFT) Size() int { return len(t.leaves) }

// Contains reports membership.
func (t *OFT) Contains(m MemberID) bool {
	_, ok := t.leaves[m]
	return ok
}

// Members lists members ascending.
func (t *OFT) Members() []MemberID {
	out := make([]MemberID, 0, len(t.leaves))
	for m := range t.leaves {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GroupKey returns the current root (group) key.
func (t *OFT) GroupKey() (keycrypt.Key, error) {
	if t.root == nil {
		return keycrypt.Key{}, ErrEmptyTree
	}
	return t.root.secret, nil
}

// Height returns the longest root-to-leaf edge count (-1 when empty).
func (t *OFT) Height() int { return oftHeight(t.root) }

func oftHeight(n *oftNode) int {
	if n == nil {
		return -1
	}
	h := -1
	if l := oftHeight(n.left); l > h {
		h = l
	}
	if r := oftHeight(n.right); r > h {
		h = r
	}
	return h + 1
}

// LeafSecret returns a member's current leaf secret (handed out over the
// registration channel).
func (t *OFT) LeafSecret(m MemberID) (keycrypt.Key, error) {
	leaf, ok := t.leaves[m]
	if !ok {
		return keycrypt.Key{}, fmt.Errorf("%w: %d", ErrMemberUnknown, m)
	}
	return leaf.secret, nil
}

// PathOf returns the member's current path description, bottom-up.
func (t *OFT) PathOf(m MemberID) ([]OFTPathEntry, error) {
	leaf, ok := t.leaves[m]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrMemberUnknown, m)
	}
	return t.pathEntries(leaf), nil
}

func (t *OFT) pathEntries(leaf *oftNode) []OFTPathEntry {
	var out []OFTPathEntry
	for n := leaf; n.parent != nil; n = n.parent {
		sib := n.sibling()
		out = append(out, OFTPathEntry{
			Parent:        n.parent.id,
			Sibling:       sib.id,
			SiblingOnLeft: n.parent.left == sib,
		})
	}
	return out
}

// freshSecret mints a new leaf secret in a fresh ID slot.
func (t *OFT) freshSecret() (keycrypt.Key, error) {
	id := t.nextID
	t.nextID++
	k, err := t.gen.New(id, 0)
	if err != nil {
		return keycrypt.Key{}, fmt.Errorf("%w: %v", ErrExhaustedEntropy, err)
	}
	t.stats.KeysRefreshed++
	return k, nil
}

// recompute recalculates an interior node's secret from its children. The
// version is the sum of the children's versions, reproducible by members.
func (t *OFT) recompute(n *oftNode) {
	version := n.left.secret.Version + n.right.secret.Version
	n.secret = keycrypt.Mix(n.id, version,
		keycrypt.Blind(n.left.secret), keycrypt.Blind(n.right.secret))
	t.stats.KeysRefreshed++
}

// membersUnder collects member IDs in a subtree, minus exclusions.
func membersUnder(n *oftNode, exclude map[MemberID]bool) []MemberID {
	var out []MemberID
	var walk func(x *oftNode)
	walk = func(x *oftNode) {
		if x == nil {
			return
		}
		if x.member != 0 && !exclude[x.member] {
			out = append(out, x.member)
		}
		walk(x.left)
		walk(x.right)
	}
	walk(n)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (t *OFT) depth(n *oftNode) int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Rekey applies a batch of joins and leaves and emits the OFT payload.
// Like the LKH Rekey, joiners fill the leaf slots vacated by departures
// first (the J=L regime), surplus joins split leaves, surplus departures
// splice their parents out.
//
// Security actions per event:
//   - replaced leaf: new member, fresh secret (registration channel);
//   - surplus departure: the leaf "nearest" the vacated position (the
//     shallowest leaf of the promoted sibling subtree) gets a fresh
//     secret, delivered wrapped under its previous secret — this is what
//     locks the departed member out of every recomputed path key;
//   - surplus join: the split partner's leaf is refreshed the same way
//     (locking the joiner out of past keys), and the joiner bootstraps
//     from its own fresh secret.
//
// After the leaf changes, every affected interior key is recomputed
// bottom-up and each updated node's new *blinded* key is multicast
// encrypted under its sibling's subtree key.
func (t *OFT) Rekey(b Batch) (*OFTPayload, error) {
	if err := t.validateOFTBatch(b); err != nil {
		return nil, err
	}
	p := &OFTPayload{Paths: make(map[MemberID][]OFTPathEntry)}
	joiners := make(map[MemberID]bool, len(b.Joins))
	for _, m := range b.Joins {
		joiners[m] = true
	}

	// changedLeaves tracks leaves with fresh secrets; structuralDirty
	// marks subtrees whose members need path re-sync.
	changedLeaves := make(map[*oftNode]bool)
	var structuralDirty []*oftNode

	refreshLeaf := func(leaf *oftNode, deliver bool) error {
		old := leaf.secret
		next, err := t.gen.New(old.ID, old.Version+1)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrExhaustedEntropy, err)
		}
		t.stats.KeysRefreshed++
		leaf.secret = next
		changedLeaves[leaf] = true
		if deliver {
			w, err := keycrypt.Wrap(next, old, t.gen.Rand)
			if err != nil {
				return err
			}
			p.Items = append(p.Items, Item{
				Wrapped:   w,
				Kind:      LeafRefresh,
				Level:     t.depth(leaf),
				Receivers: []MemberID{leaf.member},
			})
		}
		return nil
	}

	// Phase 1: replacements. The leaf keeps its key-slot ID (so surviving
	// members' path entries stay valid) but gets fresh material at the
	// next version — the new member's registration secret.
	pairs := min(len(b.Joins), len(b.Leaves))
	for i := 0; i < pairs; i++ {
		leaf := t.leaves[b.Leaves[i]]
		delete(t.leaves, b.Leaves[i])
		fresh, err := t.gen.New(leaf.secret.ID, leaf.secret.Version+1)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExhaustedEntropy, err)
		}
		t.stats.KeysRefreshed++
		leaf.secret = fresh
		leaf.member = b.Joins[i]
		t.leaves[b.Joins[i]] = leaf
		changedLeaves[leaf] = true
		t.stats.Joins++
		t.stats.Departures++
	}

	// Phase 2: surplus departures — structural splices only; the lockout
	// refreshes run after all structural changes so they never land on a
	// leaf that is itself departing in this batch.
	var promotedSubtrees []*oftNode
	for _, m := range b.Leaves[pairs:] {
		leaf := t.leaves[m]
		delete(t.leaves, m)
		t.stats.Departures++
		parent := leaf.parent
		if parent == nil {
			t.root = nil
			continue
		}
		promoted := leaf.sibling()
		grand := parent.parent
		promoted.parent = grand
		if grand == nil {
			t.root = promoted
		} else if grand.left == parent {
			grand.left = promoted
		} else {
			grand.right = promoted
		}
		// Fully detach the removed nodes: later phases test reachability
		// through parent pointers.
		parent.parent, parent.left, parent.right = nil, nil, nil
		leaf.parent = nil
		for g := grand; g != nil; g = g.parent {
			g.leaves--
		}
		// The promoted subtree's depths changed, and the subtree that was
		// parent's "aunt" has a new sibling id at that level.
		if grand != nil {
			structuralDirty = append(structuralDirty, grand)
		} else {
			structuralDirty = append(structuralDirty, promoted)
		}
		promotedSubtrees = append(promotedSubtrees, promoted)
	}

	// Phase 3: surplus joins — splits.
	var splitPartners, joinerLeaves []*oftNode
	for _, m := range b.Joins[pairs:] {
		fresh, err := t.freshSecret()
		if err != nil {
			return nil, err
		}
		leaf := &oftNode{id: fresh.ID, secret: fresh, member: m, leaves: 1}
		t.leaves[m] = leaf
		joinerLeaves = append(joinerLeaves, leaf)
		t.stats.Joins++
		if t.root == nil {
			t.root = leaf
			continue
		}
		// Descend into the lighter child down to a leaf, then split.
		n := t.root
		for !n.isLeaf() {
			if n.left.leaves <= n.right.leaves {
				n = n.left
			} else {
				n = n.right
			}
		}
		interiorID := t.nextID
		t.nextID++
		interior := &oftNode{
			id:     interiorID,
			parent: n.parent,
			left:   n,
			right:  leaf,
			leaves: n.leaves + 1,
		}
		if n.parent == nil {
			t.root = interior
		} else if n.parent.left == n {
			n.parent.left = interior
		} else {
			n.parent.right = interior
		}
		n.parent = interior
		leaf.parent = interior
		for g := interior.parent; g != nil; g = g.parent {
			g.leaves++
		}
		// The split partner's old sibling id is replaced by the new
		// interior node for every member under the split point's parent.
		if interior.parent != nil {
			structuralDirty = append(structuralDirty, interior.parent)
		} else {
			structuralDirty = append(structuralDirty, interior)
		}
		splitPartners = append(splitPartners, n)
	}

	// Phase 3b: security refreshes, now that the structure is final.
	// Split partners are refreshed so joiners cannot backtrack; each
	// promoted subtree gets one refreshed leaf so the departed member is
	// locked out of every recomputed path key — unless the subtree already
	// contains a leaf with fresh material from this batch.
	for _, n := range splitPartners {
		if !changedLeaves[n] {
			if err := refreshLeaf(n, true); err != nil {
				return nil, err
			}
		}
	}
	for _, promoted := range promotedSubtrees {
		if !t.attachedOFT(promoted) {
			continue // a later splice in this batch detached or replaced it
		}
		if hasChangedLeafUnder(promoted, changedLeaves) {
			continue
		}
		if err := refreshLeaf(shallowestLeaf(promoted), true); err != nil {
			return nil, err
		}
	}

	if t.root == nil {
		t.stats.Rekeys++
		return p, nil
	}

	// Phase 4: recompute affected interior secrets bottom-up, collecting
	// updated nodes in depth order (deepest first).
	dirty := make(map[*oftNode]bool)
	for leaf := range changedLeaves {
		if !t.attachedOFT(leaf) {
			continue
		}
		for n := leaf.parent; n != nil; n = n.parent {
			dirty[n] = true
		}
	}
	for _, n := range structuralDirty {
		if !t.attachedOFT(n) {
			continue
		}
		for x := n; x != nil; x = x.parent {
			if !x.isLeaf() {
				dirty[x] = true
			}
		}
	}
	order := make([]*oftNode, 0, len(dirty))
	for n := range dirty {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := t.depth(order[i]), t.depth(order[j])
		if di != dj {
			return di > dj
		}
		return order[i].id < order[j].id
	})
	for _, n := range order {
		t.recompute(n)
	}

	// Phase 5: emit blinded-key updates. Every changed node (leaf or
	// interior, except the root) has a new blind its sibling subtree
	// needs, encrypted under the sibling's current secret.
	emitted := 0
	emitBlind := func(n *oftNode) error {
		sib := n.sibling()
		if sib == nil {
			return nil
		}
		receivers := membersUnder(sib, joiners)
		if len(receivers) == 0 {
			return nil
		}
		w, err := keycrypt.Wrap(keycrypt.Blind(n.secret), sib.secret, t.gen.Rand)
		if err != nil {
			return err
		}
		p.Items = append(p.Items, Item{
			Wrapped:   w,
			Kind:      BlindWrap,
			Level:     t.depth(n),
			Receivers: receivers,
		})
		emitted++
		return nil
	}
	for leaf := range changedLeaves {
		if !t.attachedOFT(leaf) {
			continue
		}
		if err := emitBlind(leaf); err != nil {
			return nil, err
		}
	}
	// New joiner leaves have blinds their split partners (and, transitively,
	// everyone else via the interior recomputation) depend on.
	for _, leaf := range joinerLeaves {
		if !t.attachedOFT(leaf) || changedLeaves[leaf] {
			continue
		}
		if err := emitBlind(leaf); err != nil {
			return nil, err
		}
	}
	for _, n := range order {
		if err := emitBlind(n); err != nil {
			return nil, err
		}
	}

	// Phase 6: path re-sync for members under structurally changed nodes,
	// and bootstrap for joiners: the full set of path sibling blinds
	// wrapped under the joiner's leaf secret.
	resync := make(map[MemberID]bool)
	for _, n := range structuralDirty {
		if !t.attachedOFT(n) {
			continue
		}
		for _, m := range membersUnder(n, nil) {
			resync[m] = true
		}
	}
	for m := range resync {
		p.Paths[m] = t.pathEntries(t.leaves[m])
	}
	joinerIDs := make([]MemberID, 0, len(joiners))
	for m := range joiners {
		joinerIDs = append(joinerIDs, m)
	}
	sort.Slice(joinerIDs, func(i, j int) bool { return joinerIDs[i] < joinerIDs[j] })
	for _, m := range joinerIDs {
		leaf := t.leaves[m]
		p.Paths[m] = t.pathEntries(leaf)
		for n := leaf; n.parent != nil; n = n.parent {
			sib := n.sibling()
			w, err := keycrypt.Wrap(keycrypt.Blind(sib.secret), leaf.secret, t.gen.Rand)
			if err != nil {
				return nil, err
			}
			p.Items = append(p.Items, Item{
				Wrapped:   w,
				Kind:      JoinerWrap,
				Level:     t.depth(sib),
				Receivers: []MemberID{m},
			})
		}
	}

	t.stats.KeysWrapped += len(p.Items)
	t.stats.Rekeys++
	return p, nil
}

// MulticastKeyCount counts the payload items addressed to existing members
// (blind updates and leaf refreshes), excluding joiner bootstrap — the
// metric comparable to LKH's Payload.MulticastKeyCount.
func (p *OFTPayload) MulticastKeyCount() int {
	n := 0
	for _, it := range p.Items {
		if it.Kind != JoinerWrap {
			n++
		}
	}
	return n
}

func (t *OFT) validateOFTBatch(b Batch) error {
	seen := make(map[MemberID]bool, len(b.Joins)+len(b.Leaves))
	for _, m := range b.Joins {
		if m == 0 {
			return ErrZeroMember
		}
		if seen[m] {
			return fmt.Errorf("%w: member %d listed twice", ErrBatchConflict, m)
		}
		seen[m] = true
		if t.Contains(m) {
			return fmt.Errorf("%w: %d", ErrMemberExists, m)
		}
	}
	for _, m := range b.Leaves {
		if m == 0 {
			return ErrZeroMember
		}
		if seen[m] {
			return fmt.Errorf("%w: member %d both joins and leaves", ErrBatchConflict, m)
		}
		seen[m] = true
		if !t.Contains(m) {
			return fmt.Errorf("%w: %d", ErrMemberUnknown, m)
		}
	}
	return nil
}

func (t *OFT) attachedOFT(n *oftNode) bool {
	for ; n != nil; n = n.parent {
		if n == t.root {
			return true
		}
	}
	return false
}

// hasChangedLeafUnder reports whether the subtree contains a leaf whose
// secret was already refreshed in this batch.
func hasChangedLeafUnder(n *oftNode, changed map[*oftNode]bool) bool {
	if n == nil {
		return false
	}
	if n.isLeaf() {
		return changed[n]
	}
	return hasChangedLeafUnder(n.left, changed) || hasChangedLeafUnder(n.right, changed)
}

// shallowestLeaf returns the leaf of minimum depth in a subtree.
func shallowestLeaf(n *oftNode) *oftNode {
	type qe struct{ n *oftNode }
	queue := []qe{{n}}
	for len(queue) > 0 {
		head := queue[0].n
		queue = queue[1:]
		if head.isLeaf() {
			return head
		}
		queue = append(queue, qe{head.left}, qe{head.right})
	}
	panic("keytree: subtree without leaves")
}
