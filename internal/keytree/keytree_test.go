package keytree

import (
	"errors"
	"math"
	"testing"

	"groupkey/internal/keycrypt"
)

// newTestTree builds a deterministic tree for tests.
func newTestTree(t *testing.T, degree int, seed uint64) *Tree {
	t.Helper()
	tr, err := New(degree, WithRand(keycrypt.NewDeterministicReader(seed)))
	if err != nil {
		t.Fatalf("New(%d): %v", degree, err)
	}
	return tr
}

// populate admits members 1..n in one batch and returns the tree.
func populate(t *testing.T, tr *Tree, n int) {
	t.Helper()
	b := Batch{}
	for i := 1; i <= n; i++ {
		b.Joins = append(b.Joins, MemberID(i))
	}
	if _, err := tr.Rekey(b); err != nil {
		t.Fatalf("populate %d members: %v", n, err)
	}
}

func TestNewRejectsBadDegree(t *testing.T) {
	for _, d := range []int{-1, 0, 1} {
		if _, err := New(d); !errors.Is(err, ErrInvalidDegree) {
			t.Errorf("New(%d): err=%v, want ErrInvalidDegree", d, err)
		}
	}
}

func TestEmptyTreeBasics(t *testing.T) {
	tr := newTestTree(t, 4, 1)
	if tr.Size() != 0 {
		t.Errorf("Size=%d, want 0", tr.Size())
	}
	if tr.Height() != -1 {
		t.Errorf("Height=%d, want -1", tr.Height())
	}
	if _, err := tr.RootKey(); !errors.Is(err, ErrEmptyTree) {
		t.Errorf("RootKey on empty tree: err=%v, want ErrEmptyTree", err)
	}
	if _, err := tr.Path(1); !errors.Is(err, ErrMemberUnknown) {
		t.Errorf("Path on empty tree: err=%v, want ErrMemberUnknown", err)
	}
	checkInvariants(t, tr)
}

func TestSingleMember(t *testing.T) {
	tr := newTestTree(t, 4, 2)
	populate(t, tr, 1)
	checkInvariants(t, tr)
	if tr.Size() != 1 {
		t.Fatalf("Size=%d, want 1", tr.Size())
	}
	if tr.Height() != 0 {
		t.Errorf("Height=%d, want 0 (root is the leaf)", tr.Height())
	}
	root, err := tr.RootKey()
	if err != nil {
		t.Fatalf("RootKey: %v", err)
	}
	leaf, err := tr.Leaf(1)
	if err != nil {
		t.Fatalf("Leaf: %v", err)
	}
	if !root.Equal(leaf.Key()) {
		t.Error("single-member tree: root key should be the member's leaf key")
	}
}

func TestGrowthStaysBalanced(t *testing.T) {
	tests := []struct {
		degree int
		n      int
	}{
		{2, 2}, {2, 3}, {2, 64}, {2, 100},
		{4, 4}, {4, 5}, {4, 16}, {4, 256}, {4, 1000},
		{8, 64}, {8, 513},
		{16, 300},
	}
	for _, tt := range tests {
		tr := newTestTree(t, tt.degree, uint64(tt.degree*100000+tt.n))
		for i := 1; i <= tt.n; i++ {
			if _, err := tr.Join(MemberID(i)); err != nil {
				t.Fatalf("d=%d Join(%d): %v", tt.degree, i, err)
			}
		}
		checkInvariants(t, tr)
		if tr.Size() != tt.n {
			t.Fatalf("d=%d: Size=%d, want %d", tt.degree, tr.Size(), tt.n)
		}
		// Height must stay within a constant factor of the balanced
		// optimum: one extra level of slack for in-progress splits.
		want := int(math.Ceil(math.Log(float64(tt.n))/math.Log(float64(tt.degree)))) + 1
		if tt.n == 1 {
			want = 0
		}
		if h := tr.Height(); h > want {
			t.Errorf("d=%d n=%d: height %d exceeds balanced bound %d", tt.degree, tt.n, h, want)
		}
	}
}

func TestPathRunsLeafToRoot(t *testing.T) {
	tr := newTestTree(t, 4, 3)
	populate(t, tr, 64)
	checkInvariants(t, tr)
	path, err := tr.Path(17)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if len(path) < 2 {
		t.Fatalf("path too short: %d", len(path))
	}
	leaf, _ := tr.Leaf(17)
	if !path[0].Equal(leaf.Key()) {
		t.Error("path[0] should be the leaf key")
	}
	root, _ := tr.RootKey()
	if !path[len(path)-1].Equal(root) {
		t.Error("path end should be the root key")
	}
	// Path length == depth of leaf + 1.
	if got, want := len(path), leaf.Depth()+1; got != want {
		t.Errorf("path length %d, want %d", got, want)
	}
}

func TestLeaveShrinksAndSplices(t *testing.T) {
	tr := newTestTree(t, 2, 4)
	populate(t, tr, 8)
	for _, m := range []MemberID{3, 7, 1, 8} {
		if _, err := tr.Leave(m); err != nil {
			t.Fatalf("Leave(%d): %v", m, err)
		}
		checkInvariants(t, tr)
		if tr.Contains(m) {
			t.Fatalf("member %d still present after Leave", m)
		}
	}
	if tr.Size() != 4 {
		t.Fatalf("Size=%d, want 4", tr.Size())
	}
}

func TestLeaveLastMemberEmptiesTree(t *testing.T) {
	tr := newTestTree(t, 4, 5)
	populate(t, tr, 1)
	p, err := tr.Leave(1)
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if tr.Size() != 0 || tr.Root() != nil {
		t.Fatal("tree not empty after last member left")
	}
	if p.MulticastKeyCount() != 0 {
		t.Errorf("emptying rekey produced %d multicast keys, want 0", p.MulticastKeyCount())
	}
	checkInvariants(t, tr)
	// Tree is reusable afterwards.
	populate(t, tr, 5)
	checkInvariants(t, tr)
}

func TestJoinDuplicateRejected(t *testing.T) {
	tr := newTestTree(t, 4, 6)
	populate(t, tr, 4)
	if _, err := tr.Join(2); !errors.Is(err, ErrMemberExists) {
		t.Fatalf("duplicate Join: err=%v, want ErrMemberExists", err)
	}
}

func TestLeaveUnknownRejected(t *testing.T) {
	tr := newTestTree(t, 4, 7)
	populate(t, tr, 4)
	if _, err := tr.Leave(99); !errors.Is(err, ErrMemberUnknown) {
		t.Fatalf("unknown Leave: err=%v, want ErrMemberUnknown", err)
	}
}

func TestZeroMemberRejected(t *testing.T) {
	tr := newTestTree(t, 4, 8)
	if _, err := tr.Join(0); !errors.Is(err, ErrZeroMember) {
		t.Fatalf("Join(0): err=%v, want ErrZeroMember", err)
	}
}

func TestBatchConflictRejected(t *testing.T) {
	tr := newTestTree(t, 4, 9)
	populate(t, tr, 4)
	_, err := tr.Rekey(Batch{Joins: []MemberID{10}, Leaves: []MemberID{10}})
	if !errors.Is(err, ErrBatchConflict) {
		t.Fatalf("join+leave same member: err=%v, want ErrBatchConflict", err)
	}
	_, err = tr.Rekey(Batch{Joins: []MemberID{11, 11}})
	if !errors.Is(err, ErrBatchConflict) {
		t.Fatalf("double join: err=%v, want ErrBatchConflict", err)
	}
}

func TestMembersSorted(t *testing.T) {
	tr := newTestTree(t, 3, 10)
	for _, m := range []MemberID{5, 1, 9, 3, 7} {
		if _, err := tr.Join(m); err != nil {
			t.Fatalf("Join(%d): %v", m, err)
		}
	}
	got := tr.Members()
	want := []MemberID{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Members()=%v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members()=%v, want %v", got, want)
		}
	}
}

func TestReplacementKeepsShape(t *testing.T) {
	// With J == L the tree shape must not change: joiners fill vacated
	// slots (the regime of the paper's Appendix A model).
	tr := newTestTree(t, 4, 11)
	populate(t, tr, 256)
	h0 := tr.Height()
	b := Batch{
		Joins:  []MemberID{1001, 1002, 1003, 1004, 1005, 1006, 1007, 1008},
		Leaves: []MemberID{10, 20, 30, 40, 50, 60, 70, 80},
	}
	if _, err := tr.Rekey(b); err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	checkInvariants(t, tr)
	if tr.Size() != 256 {
		t.Fatalf("Size=%d, want 256", tr.Size())
	}
	if tr.Height() != h0 {
		t.Errorf("J=L rekey changed height %d -> %d", h0, tr.Height())
	}
}

func TestStatsAccumulate(t *testing.T) {
	tr := newTestTree(t, 4, 12)
	populate(t, tr, 10)
	if _, err := tr.Leave(3); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	s := tr.Stats()
	if s.Joins != 10 {
		t.Errorf("Stats.Joins=%d, want 10", s.Joins)
	}
	if s.Departures != 1 {
		t.Errorf("Stats.Departures=%d, want 1", s.Departures)
	}
	if s.Rekeys != 2 {
		t.Errorf("Stats.Rekeys=%d, want 2", s.Rekeys)
	}
	if s.KeysWrapped == 0 || s.KeysRefreshed == 0 {
		t.Error("Stats key counters did not accumulate")
	}
}

func TestChurnStressInvariants(t *testing.T) {
	// Long random-ish churn run; invariants must hold throughout.
	tr := newTestTree(t, 4, 13)
	next := MemberID(1)
	present := []MemberID{}
	rng := keycrypt.NewDeterministicReader(77)
	randByte := func() int {
		var b [1]byte
		rng.Read(b[:])
		return int(b[0])
	}
	for step := 0; step < 400; step++ {
		if len(present) == 0 || randByte() < 140 {
			if _, err := tr.Join(next); err != nil {
				t.Fatalf("step %d Join(%d): %v", step, next, err)
			}
			present = append(present, next)
			next++
		} else {
			i := randByte() % len(present)
			m := present[i]
			present = append(present[:i], present[i+1:]...)
			if _, err := tr.Leave(m); err != nil {
				t.Fatalf("step %d Leave(%d): %v", step, m, err)
			}
		}
		if step%20 == 0 {
			checkInvariants(t, tr)
		}
	}
	checkInvariants(t, tr)
	if tr.Size() != len(present) {
		t.Fatalf("Size=%d, want %d", tr.Size(), len(present))
	}
}
