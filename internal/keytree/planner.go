package keytree

import (
	"sort"

	"groupkey/internal/analytic"
	"groupkey/internal/keycrypt"
)

// This file implements the per-batch placement planner: instead of pairing
// joiners with departure holes in batch order and growing the tree by
// least-leaves descent, the planner enumerates a small beam of candidate
// placements (hole orderings when departures exceed joins, insertion
// anchors when joins exceed departures, amortized rebalance moves when the
// tree has drifted from the balanced bound), simulates each one on a
// lightweight shadow copy of the tree, and keeps the plan that minimizes
// the realized multicast wrap count plus the marginal ExpectedRekeyCost —
// the DC-programming relaxation of arXiv:2305.10131 restricted to the
// batch's own decision variables, with the greedy pairing as the
// always-available fallback. Planning is a pure function of the tree
// shape, the batch, and the fixed PlannerConfig: it draws no entropy and
// reads no clocks, so WAL replay and cluster replication reproduce every
// decision byte-identically.

// PlannerConfig tunes the batch placement planner. The zero value selects
// documented defaults, so `WithPlanner(PlannerConfig{})` is a sensible
// production setting.
type PlannerConfig struct {
	// CostWeight scales the expected-future-cost term against the
	// realized multicast wrap count when ranking candidates (both are in
	// units of encrypted keys). 0 means 1.
	CostWeight float64
	// ChurnHint is the departure count l used to evaluate
	// ExpectedRekeyCost. 0 derives it from each batch (its own departure
	// count, at least 1), which keeps planning replay-safe.
	ChurnHint int
	// DriftFactor enables rebalance moves once ExpectedRekeyCost rises to
	// DriftFactor × BalancedRekeyCost. 0 means 1.25; negative disables
	// moves entirely.
	DriftFactor float64
	// MaxMovesPerBatch caps the amortized subtree moves attempted per
	// batch. 0 means 2.
	MaxMovesPerBatch int
	// MoveWrapSlack is how many extra multicast wraps a move-bearing plan
	// may spend over the simulated greedy baseline. The default 0 keeps
	// the planner's never-worse guarantee unconditional; rebalance-heavy
	// deployments can trade a bounded number of wraps for faster
	// convergence to the balanced shape.
	MoveWrapSlack int
}

// normalized resolves zero-value defaults.
func (c PlannerConfig) normalized() PlannerConfig {
	if c.CostWeight == 0 {
		c.CostWeight = 1
	}
	if c.DriftFactor == 0 {
		c.DriftFactor = 1.25
	}
	if c.MaxMovesPerBatch == 0 {
		c.MaxMovesPerBatch = 2
	}
	return c
}

// Assignment pairs a departure hole (the leaf slot a departing member
// vacates) with the joiner that takes it over.
type Assignment struct {
	Hole   MemberID
	Joiner MemberID
}

// Growth places one surplus joiner. Anchor is the key ID of the interior
// node the new leaf attaches under; 0 means least-leaves descent (the
// greedy insertion policy).
type Growth struct {
	Joiner MemberID
	Anchor keycrypt.KeyID
}

// Move relocates an existing member into a departure hole as part of
// amortized rebalancing: the member's old leaf is removed (its old path is
// treated as a departure), the hole receives a fresh leaf key, and the
// member learns its new path through a LeafRefresh bridge plus JoinerWrap
// items. Membership is unchanged.
type Move struct {
	Member MemberID
	Hole   MemberID
}

// Plan is a complete placement decision for one batch. Every departure
// hole appears in exactly one of Fills, Removals, or Moves; every joiner
// appears in exactly one of Fills or Grows.
type Plan struct {
	Fills    []Assignment
	Removals []MemberID
	Grows    []Growth
	Moves    []Move
	// Planned is true when the planner chose a non-greedy candidate.
	Planned bool
	// PredictedWraps is the simulated multicast wrap count for this plan,
	// or -1 when the batch was applied without simulation. When ≥ 0 it
	// must equal the realized Payload.MulticastKeyCount().
	PredictedWraps int
	// PredictedCost is the simulated post-batch ExpectedRekeyCost (0 when
	// not simulated).
	PredictedCost float64
}

// Placement records the structural decisions one Rekey realized, so tests
// and the planner's own differential harness can assert that the applied
// tree mutation matches the chosen plan. Grown carries the key ID of the
// parent each surplus joiner actually attached under (for descent
// insertions this is the resolved parent, possibly a split-created
// interior; 0 means the joiner became the root).
type Placement struct {
	Fills          []Assignment
	Removed        []MemberID
	Grown          []Growth
	Moves          []Move
	Planned        bool
	PredictedWraps int
}

// greedyPlan reproduces the historical pairing exactly: b.Joins[i] takes
// b.Leaves[i]'s slot, surplus departures are removed in batch order, and
// surplus joins grow the tree by least-leaves descent.
func greedyPlan(b Batch) Plan {
	pairs := min(len(b.Joins), len(b.Leaves))
	p := Plan{PredictedWraps: -1}
	if pairs > 0 {
		p.Fills = make([]Assignment, pairs)
		for i := 0; i < pairs; i++ {
			p.Fills[i] = Assignment{Hole: b.Leaves[i], Joiner: b.Joins[i]}
		}
	}
	p.Removals = b.Leaves[pairs:]
	if surplus := b.Joins[pairs:]; len(surplus) > 0 {
		p.Grows = make([]Growth, len(surplus))
		for i, m := range surplus {
			p.Grows[i] = Growth{Joiner: m}
		}
	}
	return p
}

// PlanBatch returns the placement the next Rekey of this batch would
// realize, without mutating the tree: the planner's choice when WithPlanner
// is set, the greedy pairing otherwise. Planning is deterministic, so a
// following Rekey applies exactly this plan.
func (t *Tree) PlanBatch(b Batch) (Plan, error) {
	if err := t.validateBatch(b); err != nil {
		return Plan{}, err
	}
	if t.planner == nil {
		return greedyPlan(b), nil
	}
	return t.planner.plan(t, b), nil
}

// planner holds the normalized configuration. It is stateless beyond the
// config: every decision is recomputed from the tree and batch so replay
// reproduces it.
type planner struct {
	cfg PlannerConfig
}

// costEps is the relative tolerance for expected-cost comparisons between
// simulated candidates (the sums are floating-point walks over identical
// node sets, so ordering noise is far below this).
func costEps(c float64) float64 {
	if c < 0 {
		c = -c
	}
	return 1e-9 * (1 + c)
}

// churn resolves the ExpectedRekeyCost departure count for a batch.
func (pl *planner) churn(b Batch) int {
	if pl.cfg.ChurnHint > 0 {
		return pl.cfg.ChurnHint
	}
	if l := len(b.Leaves); l > 0 {
		return l
	}
	return 1
}

// plan picks the batch's placement. It simulates the greedy baseline and
// every candidate, admits only candidates that dominate greedy on both the
// realized wrap count and the post-batch expected cost, and returns the
// admissible candidate with the best combined score — or greedy itself.
func (pl *planner) plan(t *Tree, b Batch) Plan {
	g := greedyPlan(b)
	j, l := len(b.Joins), len(b.Leaves)
	// With J == L every hole is filled and nothing grows or shrinks: the
	// only freedom is which joiner takes which hole, which changes neither
	// wraps nor shape. An empty tree has no placement freedom either.
	if t.root == nil || j == l {
		return g
	}

	var candidates []Plan
	if l > j {
		if j > 0 { // with no fills, removal order cannot change the shape
			candidates = pl.holeOrderPlans(t, b)
			candidates = append(candidates, pl.consolidationPlans(t, b)...)
		}
	} else {
		candidates = pl.growthPlans(t, b)
	}
	movesPossible := l > j && pl.cfg.DriftFactor > 0
	if len(candidates) == 0 && !movesPossible {
		return g
	}

	churn := pl.churn(b)
	gs := pl.simulate(t, b, g, churn)
	g.PredictedWraps = gs.wraps
	g.PredictedCost = gs.cost
	best, bestScore := g, pl.score(gs)
	for _, c := range candidates {
		s := pl.simulate(t, b, c, churn)
		if s.invalid || s.wraps > gs.wraps || s.cost > gs.cost+costEps(gs.cost) {
			continue // candidate does not dominate greedy; inadmissible
		}
		if sc := pl.score(s); sc < bestScore-1e-12 {
			c.Planned = true
			c.PredictedWraps = s.wraps
			c.PredictedCost = s.cost
			best, bestScore = c, sc
		}
	}
	if movesPossible && len(best.Removals) > 0 {
		best, bestScore = pl.tryMoves(t, b, best, bestScore, gs, churn)
	}

	if best.Planned {
		t.plannerStats.PlannedBatches++
		t.plannerStats.SavedWraps += gs.wraps - best.PredictedWraps
	} else {
		t.plannerStats.GreedyFallbacks++
	}
	return best
}

// score folds a simulation into a single objective: wraps this batch plus
// the weighted expected cost of every future batch's wraps.
func (pl *planner) score(s simResult) float64 {
	return float64(s.wraps) + pl.cfg.CostWeight*s.cost
}

// holeInfo is the per-hole shape data candidate orderings sort on.
type holeInfo struct {
	m           MemberID
	keyID       keycrypt.KeyID
	depth       int
	parentHoles int // batch holes sharing this hole's parent
	survivors   int // parent children minus its batch holes
}

// holeOrderPlans generates alternative fill/removal splits for the L > J
// regime. The greedy baseline fills the first J holes in batch order; the
// alternatives reorder holes so that fills land where they preserve the
// most structure and removals land where they collapse it:
//
//   - shallow-first: fill the holes closest to the root (shorter joiner
//     paths, removals deepen nothing).
//   - cluster-collapse: fill lone holes and remove clustered ones, so
//     sibling departures splice whole interior nodes away.
//   - crowded-first: fill holes whose parent keeps the most surviving
//     children, removing from sparse parents where a removal triggers a
//     splice (one fewer child wrap at that level).
func (pl *planner) holeOrderPlans(t *Tree, b Batch) []Plan {
	j := len(b.Joins)
	infos := make([]holeInfo, len(b.Leaves))
	holesByParent := make(map[*Node]int, len(b.Leaves))
	for _, m := range b.Leaves {
		holesByParent[t.leaves[m].parent]++
	}
	for i, m := range b.Leaves {
		leaf := t.leaves[m]
		hi := holeInfo{m: m, keyID: leaf.key.ID, depth: leaf.Depth()}
		if p := leaf.parent; p != nil {
			hi.parentHoles = holesByParent[p]
			hi.survivors = len(p.children) - hi.parentHoles
		}
		infos[i] = hi
	}

	orderings := []func(a, b holeInfo) bool{
		func(a, b holeInfo) bool { // shallow-first
			if a.depth != b.depth {
				return a.depth < b.depth
			}
			return a.keyID < b.keyID
		},
		func(a, b holeInfo) bool { // cluster-collapse
			if a.parentHoles != b.parentHoles {
				return a.parentHoles < b.parentHoles
			}
			if a.depth != b.depth {
				return a.depth < b.depth
			}
			return a.keyID < b.keyID
		},
		func(a, b holeInfo) bool { // crowded-first
			if a.survivors != b.survivors {
				return a.survivors > b.survivors
			}
			if a.depth != b.depth {
				return a.depth < b.depth
			}
			return a.keyID < b.keyID
		},
	}

	var plans []Plan
	seen := map[string]bool{orderKey(b.Leaves): true} // greedy's order
	scratch := make([]holeInfo, len(infos))
	for _, less := range orderings {
		copy(scratch, infos)
		sort.SliceStable(scratch, func(x, y int) bool { return less(scratch[x], scratch[y]) })
		order := make([]MemberID, len(scratch))
		for i, hi := range scratch {
			order[i] = hi.m
		}
		// Fill order beyond the split is irrelevant (the fill set is what
		// matters) but kept as sorted for deterministic entropy pairing.
		k := orderKey(order)
		if seen[k] {
			continue
		}
		seen[k] = true
		p := Plan{Fills: make([]Assignment, j), Removals: order[j:]}
		for i := 0; i < j; i++ {
			p.Fills[i] = Assignment{Hole: order[i], Joiner: b.Joins[i]}
		}
		plans = append(plans, p)
	}
	return plans
}

// orderKey builds a dedup key for a hole ordering.
func orderKey(ms []MemberID) string {
	buf := make([]byte, 0, 8*len(ms))
	for _, m := range ms {
		buf = append(buf, byte(m), byte(m>>8), byte(m>>16), byte(m>>24),
			byte(m>>32), byte(m>>40), byte(m>>48), byte(m>>56))
	}
	return string(buf)
}

// growthPlans generates alternative anchor assignments for the J > L
// regime's surplus joiners. Greedy descends to the least-loaded leaf-ward
// slot; the alternatives attach surplus joiners under explicitly chosen
// interior nodes:
//
//   - departure-anchored: under interiors already departure-dirty from the
//     batch's fills (deep first, then shallow first). Their child wraps
//     are already being paid, and an all-joiner child is never multicast,
//     so these attachments cost zero extra multicast wraps.
//   - pack-shallow: under the shallowest underfull interiors anywhere,
//     trading one OldKeyWrap taint per touched clean path for shorter
//     joiner paths and a flatter tree.
func (pl *planner) growthPlans(t *Tree, b Batch) []Plan {
	surplus := b.Joins[len(b.Leaves):]
	if len(surplus) == 0 {
		return nil
	}

	// Interiors dirtied by fills: every ancestor of a filled hole.
	dirty := make(map[*Node]bool)
	for _, m := range b.Leaves {
		for n := t.leaves[m].parent; n != nil; n = n.parent {
			dirty[n] = true
		}
	}

	type anchorInfo struct {
		n     *Node
		keyID keycrypt.KeyID
		depth int
		spare int
	}
	var dirtyAnchors, openAnchors []anchorInfo
	walk(t.root, func(n *Node) {
		if n.IsLeaf() || len(n.children) >= t.degree {
			return
		}
		ai := anchorInfo{n: n, keyID: n.key.ID, depth: n.Depth(), spare: t.degree - len(n.children)}
		if dirty[n] {
			dirtyAnchors = append(dirtyAnchors, ai)
		}
		openAnchors = append(openAnchors, ai)
	})

	assign := func(anchors []anchorInfo) Plan {
		grows := make([]Growth, 0, len(surplus))
		i := 0
		for _, a := range anchors {
			for s := 0; s < a.spare && i < len(surplus); s++ {
				grows = append(grows, Growth{Joiner: surplus[i], Anchor: a.keyID})
				i++
			}
			if i == len(surplus) {
				break
			}
		}
		for ; i < len(surplus); i++ {
			grows = append(grows, Growth{Joiner: surplus[i]}) // descent
		}
		p := greedyPlan(b)
		p.Grows = grows
		return p
	}

	var plans []Plan
	if len(dirtyAnchors) > 0 {
		deep := append([]anchorInfo(nil), dirtyAnchors...)
		sort.Slice(deep, func(x, y int) bool {
			if deep[x].depth != deep[y].depth {
				return deep[x].depth > deep[y].depth
			}
			return deep[x].keyID < deep[y].keyID
		})
		plans = append(plans, assign(deep))
		if len(dirtyAnchors) > 1 {
			shallow := append([]anchorInfo(nil), dirtyAnchors...)
			sort.Slice(shallow, func(x, y int) bool {
				if shallow[x].depth != shallow[y].depth {
					return shallow[x].depth < shallow[y].depth
				}
				return shallow[x].keyID < shallow[y].keyID
			})
			plans = append(plans, assign(shallow))
		}
	}
	if len(openAnchors) > 0 {
		sort.Slice(openAnchors, func(x, y int) bool {
			if openAnchors[x].depth != openAnchors[y].depth {
				return openAnchors[x].depth < openAnchors[y].depth
			}
			return openAnchors[x].keyID < openAnchors[y].keyID
		})
		plans = append(plans, assign(openAnchors))
	}
	return plans
}

// consolidationPlans generates remove-and-regrow candidates for the L > J
// regime: instead of filling J of the departure holes in place, every hole
// is removed — letting hollowed-out regions splice whole subtrees away —
// and the J joiners are re-anchored as fresh leaves under interiors the
// removals already dirtied (an all-joiner child is never multicast, so a
// dirty anchor costs no extra wrap this batch) or under the shallowest
// open interiors. This is the "insertion subtree" half of the
// DC-programming relaxation: realized wraps stay at greedy's level — the
// dominance guard verifies — while the pruned, packed shape lowers the
// expected cost of every future batch.
func (pl *planner) consolidationPlans(t *Tree, b Batch) []Plan {
	j := len(b.Joins)
	if j == 0 {
		return nil
	}
	// Replay the removals on a scratch copy, in plan order, so candidate
	// anchors are interiors that provably survive every cascaded splice.
	st := newSimTree(t, false)
	dirty := make(map[*simNode]bool)
	for _, m := range b.Leaves {
		for n := st.removeLeaf(m); n != nil; n = n.parent {
			dirty[n] = true
		}
	}
	if st.root == nil {
		return nil // the batch empties the tree; nothing to anchor under
	}

	type anchorInfo struct {
		keyID keycrypt.KeyID
		depth int
		spare int
		dirty bool
	}
	var anchors []anchorInfo
	var collect func(n *simNode, depth int)
	collect = func(n *simNode, depth int) {
		if n.member != 0 {
			return
		}
		if len(n.children) < st.degree {
			anchors = append(anchors, anchorInfo{
				keyID: n.keyID, depth: depth,
				spare: st.degree - len(n.children), dirty: dirty[n],
			})
		}
		for _, c := range n.children {
			collect(c, depth+1)
		}
	}
	collect(st.root, 0)
	if len(anchors) == 0 {
		return nil
	}

	assign := func(ordered []anchorInfo) Plan {
		grows := make([]Growth, 0, j)
		i := 0
		for _, a := range ordered {
			for s := 0; s < a.spare && i < j; s++ {
				grows = append(grows, Growth{Joiner: b.Joins[i], Anchor: a.keyID})
				i++
			}
			if i == j {
				break
			}
		}
		for ; i < j; i++ {
			grows = append(grows, Growth{Joiner: b.Joins[i]}) // descent
		}
		return Plan{Removals: b.Leaves, Grows: grows}
	}

	// dirty-shallow-first: zero extra multicast wraps and the shortest
	// joiner paths the already-paid dirty set allows.
	var plans []Plan
	dirtyAnchors := make([]anchorInfo, 0, len(anchors))
	for _, a := range anchors {
		if a.dirty {
			dirtyAnchors = append(dirtyAnchors, a)
		}
	}
	byDepth := func(as []anchorInfo) func(x, y int) bool {
		return func(x, y int) bool {
			if as[x].depth != as[y].depth {
				return as[x].depth < as[y].depth
			}
			return as[x].keyID < as[y].keyID
		}
	}
	if len(dirtyAnchors) > 0 {
		sort.Slice(dirtyAnchors, byDepth(dirtyAnchors))
		plans = append(plans, assign(dirtyAnchors))
	}
	// open-shallow-first: taints clean paths (one OldKeyWrap each) for the
	// flattest packing; admissible only when the taint is free.
	sort.Slice(anchors, byDepth(anchors))
	plans = append(plans, assign(anchors))
	return plans
}

// tryMoves augments the winning plan with amortized rebalance moves: when
// the tree's cost has drifted past the configured factor above the
// balanced bound, deep members are relocated into shallow departure holes
// that would otherwise be removed. Each added move must keep the plan
// within MoveWrapSlack realized wraps of the greedy baseline and strictly
// reduce the post-batch expected cost, so the default slack of 0 preserves
// the never-worse guarantee.
func (pl *planner) tryMoves(t *Tree, b Batch, best Plan, bestScore float64, gs simResult, churn int) (Plan, float64) {
	if t.CostDrift(churn) < pl.cfg.DriftFactor {
		return best, bestScore
	}

	type moverInfo struct {
		m     MemberID
		depth int
	}
	inBatch := make(map[MemberID]bool, len(b.Joins)+len(b.Leaves))
	for _, m := range b.Joins {
		inBatch[m] = true
	}
	for _, m := range b.Leaves {
		inBatch[m] = true
	}
	movers := make([]moverInfo, 0, len(t.leaves))
	for m, leaf := range t.leaves {
		if !inBatch[m] {
			movers = append(movers, moverInfo{m: m, depth: leaf.Depth()})
		}
	}
	sort.Slice(movers, func(x, y int) bool {
		if movers[x].depth != movers[y].depth {
			return movers[x].depth > movers[y].depth
		}
		return movers[x].m < movers[y].m
	})

	holes := make([]moverInfo, 0, len(best.Removals))
	for _, m := range best.Removals {
		holes = append(holes, moverInfo{m: m, depth: t.leaves[m].Depth()})
	}
	sort.Slice(holes, func(x, y int) bool {
		if holes[x].depth != holes[y].depth {
			return holes[x].depth < holes[y].depth
		}
		return holes[x].m < holes[y].m
	})

	cur, curScore := best, bestScore
	curCost := cur.PredictedCost // plan() always simulates the base first
	maxMoves := pl.cfg.MaxMovesPerBatch
	for i := 0; i < maxMoves && i < len(movers) && i < len(holes); i++ {
		mv, hl := movers[i], holes[i]
		if mv.depth <= hl.depth+1 {
			break // relocating would not shorten the member's path
		}
		cand := Plan{
			Fills:    cur.Fills,
			Removals: removeMember(cur.Removals, hl.m),
			Grows:    cur.Grows,
			Moves:    append(append([]Move(nil), cur.Moves...), Move{Member: mv.m, Hole: hl.m}),
		}
		s := pl.simulate(t, b, cand, churn)
		if s.invalid || s.wraps > gs.wraps+pl.cfg.MoveWrapSlack {
			break
		}
		if s.cost > gs.cost+costEps(gs.cost) || s.cost >= curCost-costEps(curCost) {
			break // moves must strictly improve the expected cost
		}
		cand.Planned = true
		cand.PredictedWraps = s.wraps
		cand.PredictedCost = s.cost
		cur, curScore, curCost = cand, pl.score(s), s.cost
	}
	return cur, curScore
}

// removeMember returns ms without the first occurrence of m.
func removeMember(ms []MemberID, m MemberID) []MemberID {
	out := make([]MemberID, 0, len(ms)-1)
	for _, x := range ms {
		if x != m {
			out = append(out, x)
		}
	}
	return out
}

// --- shadow simulation -------------------------------------------------

// simNode mirrors the structural fields of Node: shape, membership and
// subtree leaf counts, plus the key ID for anchor resolution. Keys are
// never materialized — the simulator predicts wrap counts and expected
// cost, not bytes.
type simNode struct {
	parent   *simNode
	children []*simNode
	member   MemberID
	leaves   int
	keyID    keycrypt.KeyID
}

// simTree is the planner's scratch copy of a Tree. One clone is built per
// simulated candidate and mutated through the exact phases Rekey applies.
type simTree struct {
	degree int
	root   *simNode
	leaves map[MemberID]*simNode
	byKey  map[keycrypt.KeyID]*simNode
	size   int
}

func newSimTree(t *Tree, needAnchors bool) *simTree {
	st := &simTree{
		degree: t.degree,
		leaves: make(map[MemberID]*simNode, len(t.leaves)),
		size:   len(t.leaves),
	}
	if needAnchors {
		st.byKey = make(map[keycrypt.KeyID]*simNode)
	}
	st.root = st.clone(t.root, nil)
	return st
}

func (st *simTree) clone(n *Node, parent *simNode) *simNode {
	if n == nil {
		return nil
	}
	s := &simNode{parent: parent, member: n.member, leaves: n.leaves, keyID: n.key.ID}
	if n.member != 0 {
		st.leaves[n.member] = s
	}
	if st.byKey != nil {
		st.byKey[n.key.ID] = s
	}
	if len(n.children) > 0 {
		s.children = make([]*simNode, len(n.children))
		for i, c := range n.children {
			s.children[i] = st.clone(c, s)
		}
	}
	return s
}

// removeLeaf mirrors Tree.removeLeaf: detach the leaf, splice any interior
// left with one child (fully detaching the spliced node), and return the
// lowest surviving compromised ancestor.
func (st *simTree) removeLeaf(m MemberID) *simNode {
	leaf := st.leaves[m]
	delete(st.leaves, m)
	st.size--
	parent := leaf.parent
	if parent == nil {
		st.root = nil
		return nil
	}
	for i, c := range parent.children {
		if c == leaf {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			break
		}
	}
	leaf.parent = nil
	for p := parent; p != nil; p = p.parent {
		p.leaves--
	}
	if len(parent.children) == 1 {
		only := parent.children[0]
		grand := parent.parent
		parent.parent, parent.children = nil, nil
		if grand == nil {
			only.parent = nil
			st.root = only
			return only
		}
		for i, c := range grand.children {
			if c == parent {
				grand.children[i] = only
				break
			}
		}
		only.parent = grand
		return grand
	}
	return parent
}

// attached mirrors Tree.attached.
func (st *simTree) attached(n *simNode) bool {
	for ; n != nil; n = n.parent {
		if n == st.root {
			return true
		}
	}
	return false
}

// simResult is one candidate's predicted outcome. invalid marks a plan
// applyPlan would reject — an anchored grow whose anchor was spliced
// away or filled by an earlier phase of the same plan.
type simResult struct {
	wraps   int
	cost    float64
	invalid bool
}

// simInfo mirrors dirtyInfo's structural flags.
type simInfo struct {
	departure bool
	isNew     bool
}

// simulate applies a plan to a shadow copy of the tree through the exact
// phases Rekey uses — fills, removals, moves, grows, dirty pruning — and
// returns the multicast wrap count the real emitters would produce plus
// the post-batch ExpectedRekeyCost. Keeping this mirror exact is load-
// bearing: FuzzPlanBatch and the determinism suite assert predicted ==
// realized on every planned batch.
func (pl *planner) simulate(t *Tree, b Batch, p Plan, churn int) simResult {
	needAnchors := false
	for _, g := range p.Grows {
		if g.Anchor != 0 {
			needAnchors = true
			break
		}
	}
	st := newSimTree(t, needAnchors)

	dirty := make(map[*simNode]*simInfo)
	joiners := make(map[MemberID]bool, len(b.Joins)+len(p.Moves))
	for _, m := range b.Joins {
		joiners[m] = true
	}
	mark := func(n *simNode, departure bool) {
		for ; n != nil; n = n.parent {
			info, ok := dirty[n]
			if !ok {
				info = &simInfo{}
				dirty[n] = info
			}
			info.departure = info.departure || departure
		}
	}

	for _, f := range p.Fills {
		leaf := st.leaves[f.Hole]
		delete(st.leaves, f.Hole)
		leaf.member = f.Joiner
		st.leaves[f.Joiner] = leaf
		mark(leaf.parent, true)
	}
	for _, m := range p.Removals {
		mark(st.removeLeaf(m), true)
	}
	for _, mv := range p.Moves {
		mark(st.removeLeaf(mv.Member), true)
		st.size++ // the mover stays a member; removeLeaf decremented
		leaf := st.leaves[mv.Hole]
		delete(st.leaves, mv.Hole)
		st.size--
		leaf.member = mv.Member
		st.leaves[mv.Member] = leaf
		mark(leaf.parent, true)
		joiners[mv.Member] = true
	}
	for _, g := range p.Grows {
		st.size++
		leaf := &simNode{member: g.Joiner, leaves: 1}
		st.leaves[g.Joiner] = leaf
		if g.Anchor != 0 {
			// Mirror applyPlan's anchor validation: earlier phases of this
			// same plan (a removal splice, a move's departure, prior grows)
			// can detach or fill the anchor the candidate generator saw.
			anchor := st.byKey[g.Anchor]
			if anchor == nil || !st.attached(anchor) || len(anchor.children) >= st.degree {
				return simResult{invalid: true}
			}
			leaf.parent = anchor
			anchor.children = append(anchor.children, leaf)
			for p := anchor; p != nil; p = p.parent {
				p.leaves++
			}
			mark(anchor, false)
			continue
		}
		st.growDescend(leaf, dirty, mark)
	}

	for n := range dirty {
		if !st.attached(n) || len(n.children) == 0 {
			delete(dirty, n)
		}
	}

	nonJoiner := make(map[*simNode]int)
	var countNonJoiner func(n *simNode) int
	countNonJoiner = func(n *simNode) int {
		if c, ok := nonJoiner[n]; ok {
			return c
		}
		c := 0
		if n.member != 0 {
			if !joiners[n.member] {
				c = 1
			}
		} else {
			for _, ch := range n.children {
				c += countNonJoiner(ch)
			}
		}
		nonJoiner[n] = c
		return c
	}

	wraps := 0
	for n, info := range dirty {
		if info.departure || info.isNew {
			for _, c := range n.children {
				if countNonJoiner(c) > 0 {
					wraps++
				}
			}
		} else if countNonJoiner(n) > 0 {
			wraps++
		}
	}

	return simResult{wraps: wraps, cost: st.expectedCost(churn)}
}

// growDescend mirrors insertLeafTracked for an already-allocated sim leaf:
// attach at an underfull interior reached by least-leaves descent, or
// split a leaf into a new interior (marked new + departure, its ancestors
// join-tainted).
func (st *simTree) growDescend(leaf *simNode, dirty map[*simNode]*simInfo, mark func(*simNode, bool)) {
	if st.root == nil {
		st.root = leaf
		return
	}
	n := st.root
	for {
		if len(n.children) == 0 && n.member != 0 {
			interior := &simNode{parent: n.parent, children: []*simNode{n, leaf}, leaves: n.leaves + 1}
			if n.parent == nil {
				st.root = interior
			} else {
				for i, c := range n.parent.children {
					if c == n {
						n.parent.children[i] = interior
						break
					}
				}
			}
			n.parent = interior
			leaf.parent = interior
			for p := interior.parent; p != nil; p = p.parent {
				p.leaves++
			}
			dirty[interior] = &simInfo{isNew: true, departure: true}
			mark(interior.parent, false)
			return
		}
		if len(n.children) < st.degree {
			leaf.parent = n
			n.children = append(n.children, leaf)
			for p := n; p != nil; p = p.parent {
				p.leaves++
			}
			mark(n, false)
			return
		}
		best := n.children[0]
		for _, c := range n.children[1:] {
			if c.leaves < best.leaves {
				best = c
			}
		}
		n = best
	}
}

// expectedCost mirrors Tree.ExpectedRekeyCost on the shadow tree.
func (st *simTree) expectedCost(l int) float64 {
	n := float64(st.size)
	if n <= 1 || l <= 0 {
		return 0
	}
	lf := float64(l)
	if lf > n {
		lf = n
	}
	total := 0.0
	var visit func(v *simNode)
	visit = func(v *simNode) {
		if len(v.children) == 0 {
			return
		}
		pUpdate := 1 - analytic.ChooseRatio(n, float64(v.leaves), lf)
		for _, c := range v.children {
			contribution := pUpdate - analytic.AllChosenProb(n, float64(c.leaves), lf)
			if contribution > 0 {
				total += contribution
			}
			visit(c)
		}
	}
	visit(st.root)
	return total
}
