package keytree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"groupkey/internal/keycrypt"
)

// marshalPayload flattens a payload to bytes: the determinism contract is
// that the engine's output is byte-identical to the serial oracle's.
func marshalPayload(tb testing.TB, p *Payload) []byte {
	tb.Helper()
	var buf bytes.Buffer
	for _, it := range p.AllItems() {
		fmt.Fprintf(&buf, "%d|%d|", it.Kind, it.Level)
		buf.Write(it.Wrapped.Marshal())
		for _, m := range it.Receivers {
			fmt.Fprintf(&buf, "|%d", m)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// fuzzBatches generates a reproducible churn schedule: joins, leaves and
// replacements (joins paired with leaves) of varying sizes.
func fuzzBatches(seed int64, initial, rounds int) []Batch {
	rnd := rand.New(rand.NewSource(seed))
	next := MemberID(1)
	var present []MemberID
	var batches []Batch

	prime := Batch{}
	for i := 0; i < initial; i++ {
		prime.Joins = append(prime.Joins, next)
		present = append(present, next)
		next++
	}
	batches = append(batches, prime)

	for r := 0; r < rounds; r++ {
		b := Batch{}
		nJoin := rnd.Intn(8)
		nLeave := rnd.Intn(8)
		if nLeave > len(present) {
			nLeave = len(present)
		}
		rnd.Shuffle(len(present), func(i, j int) { present[i], present[j] = present[j], present[i] })
		b.Leaves = append(b.Leaves, present[:nLeave]...)
		present = present[nLeave:]
		for i := 0; i < nJoin; i++ {
			b.Joins = append(b.Joins, next)
			present = append(present, next)
			next++
		}
		batches = append(batches, b)
	}
	return batches
}

// TestRekeyParallelMatchesSerial drives the legacy serial emitter and the
// planned engine (at worker counts 1, 2 and 8) over identical fuzzed churn
// with identical entropy streams, asserting every payload — items, joiner
// items, kinds, levels, receivers and ciphertext bytes — is identical.
func TestRekeyParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				serial, err := New(3, WithRand(keycrypt.NewDeterministicReader(uint64(seed))), WithLegacyRekey())
				if err != nil {
					t.Fatal(err)
				}
				engine, err := New(3, WithRand(keycrypt.NewDeterministicReader(uint64(seed))), WithWrapWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				for i, b := range fuzzBatches(seed, 40, 30) {
					ps, err := serial.Rekey(b)
					if err != nil {
						t.Fatalf("batch %d: serial: %v", i, err)
					}
					pe, err := engine.Rekey(b)
					if err != nil {
						t.Fatalf("batch %d: engine: %v", i, err)
					}
					if len(ps.Items) != len(pe.Items) || len(ps.JoinerItems) != len(pe.JoinerItems) {
						t.Fatalf("batch %d: item counts diverge: serial %d+%d, engine %d+%d",
							i, len(ps.Items), len(ps.JoinerItems), len(pe.Items), len(pe.JoinerItems))
					}
					bs, be := marshalPayload(t, ps), marshalPayload(t, pe)
					if !bytes.Equal(bs, be) {
						t.Fatalf("batch %d: payload bytes diverge (joins=%d leaves=%d)", i, len(b.Joins), len(b.Leaves))
					}
				}
				if sw, ew := serial.Stats().KeysWrapped, engine.Stats().KeysWrapped; sw != ew {
					t.Fatalf("KeysWrapped diverge: serial %d, engine %d", sw, ew)
				}
			})
		}
	}
}

// TestRekeyReplacementDeterminism covers the pure-replacement regime (J=L,
// Phase 1) specifically, where joiners reuse vacated leaf slots.
func TestRekeyReplacementDeterminism(t *testing.T) {
	const n = 64
	mk := func(opts ...Option) *Tree {
		tr, err := New(4, append([]Option{WithRand(keycrypt.NewDeterministicReader(99))}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		prime := Batch{}
		for i := 1; i <= n; i++ {
			prime.Joins = append(prime.Joins, MemberID(i))
		}
		if _, err := tr.Rekey(prime); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	serial := mk(WithLegacyRekey())
	engine := mk(WithWrapWorkers(8))
	next := MemberID(n + 1)
	for round := 0; round < 10; round++ {
		b := Batch{}
		for j := 0; j < 6; j++ {
			b.Leaves = append(b.Leaves, MemberID(round*6+j+1))
			b.Joins = append(b.Joins, next)
			next++
		}
		ps, err := serial.Rekey(b)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := engine.Rekey(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalPayload(t, ps), marshalPayload(t, pe)) {
			t.Fatalf("round %d: replacement payloads diverge", round)
		}
	}
}
