package keytree

import (
	"math"
	"testing"

	"groupkey/internal/analytic"
	"groupkey/internal/keycrypt"
)

func TestExpectedRekeyCostMatchesClosedFormOnFullTree(t *testing.T) {
	// On a full balanced tree the exact per-node sum must reproduce the
	// implementation-aware closed form (the paper's Ne minus the redundant
	// replaced-subtree wraps this library never multicasts).
	for _, tt := range []struct {
		d, n, l int
	}{
		{4, 256, 8}, {4, 1024, 32}, {2, 256, 16}, {8, 512, 4},
	} {
		tr := newTestTree(t, tt.d, uint64(tt.n+tt.d))
		populate(t, tr, tt.n)
		exact := tr.ExpectedRekeyCost(tt.l)
		closed := analytic.BatchRekeyCostImpl(float64(tt.n), float64(tt.l), tt.d)
		if math.Abs(exact-closed)/closed > 1e-6 {
			t.Errorf("d=%d n=%d l=%d: exact %v vs impl closed form %v", tt.d, tt.n, tt.l, exact, closed)
		}
		// And the paper's unmodified Ne sits exactly one correction above.
		paper := analytic.BatchRekeyCost(float64(tt.n), float64(tt.l), tt.d)
		if paper <= exact {
			t.Errorf("d=%d n=%d l=%d: paper Ne %v not above exact %v", tt.d, tt.n, tt.l, paper, exact)
		}
	}
}

func TestExpectedRekeyCostMatchesSimulation(t *testing.T) {
	// The exact expectation must match the empirical mean of real rekey
	// batches (J=L replacement) on the same tree shape.
	const n, l, trials = 243, 9, 120
	tr := newTestTree(t, 3, 77)
	populate(t, tr, n)
	want := tr.ExpectedRekeyCost(l)

	rng := keycrypt.NewDeterministicReader(78)
	pick := func(k int) int {
		var b [2]byte
		rng.Read(b[:])
		return (int(b[0])<<8 | int(b[1])) % k
	}
	nextID := MemberID(10000)
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		members := tr.Members()
		b := Batch{}
		chosen := make(map[int]bool, l)
		for len(b.Leaves) < l {
			i := pick(len(members))
			if chosen[i] {
				continue
			}
			chosen[i] = true
			b.Leaves = append(b.Leaves, members[i])
		}
		for j := 0; j < l; j++ {
			b.Joins = append(b.Joins, nextID)
			nextID++
		}
		p, err := tr.Rekey(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sum += float64(p.MulticastKeyCount())
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical mean %v vs exact expectation %v (>5%% off)", got, want)
	}
}

func TestExpectedRekeyCostPartialTreeBelowClosedForm(t *testing.T) {
	// For a partially full tree, the exact value and the continuous
	// implementation-aware model must agree within a few percent (the
	// continuous layout only approximates the real shape).
	tr := newTestTree(t, 4, 79)
	populate(t, tr, 700) // between 4^4 and 4^5
	exact := tr.ExpectedRekeyCost(20)
	model := analytic.BatchRekeyCostImpl(700, 20, 4)
	if math.Abs(exact-model)/model > 0.10 {
		t.Fatalf("exact %v vs continuous impl model %v differ by >10%%", exact, model)
	}
}

func TestExpectedRekeyCostDegenerate(t *testing.T) {
	tr := newTestTree(t, 4, 80)
	if got := tr.ExpectedRekeyCost(1); got != 0 {
		t.Errorf("empty tree cost %v", got)
	}
	populate(t, tr, 16)
	if got := tr.ExpectedRekeyCost(0); got != 0 {
		t.Errorf("l=0 cost %v", got)
	}
	// l > n clamps.
	if a, b := tr.ExpectedRekeyCost(16), tr.ExpectedRekeyCost(99); math.Abs(a-b) > 1e-9 {
		t.Errorf("l>n not clamped: %v vs %v", a, b)
	}
}

func TestOFTExpectedRekeyCostMatchesSimulation(t *testing.T) {
	const n, l, trials = 128, 4, 120
	h := newOFTHarness(t, 81)
	joins := Batch{}
	for i := 1; i <= n; i++ {
		joins.Joins = append(joins.Joins, MemberID(i))
	}
	h.process(joins)
	want := h.tree.ExpectedRekeyCost(l)

	rng := keycrypt.NewDeterministicReader(82)
	pick := func(k int) int {
		var b [2]byte
		rng.Read(b[:])
		return (int(b[0])<<8 | int(b[1])) % k
	}
	nextID := MemberID(10000)
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		members := h.tree.Members()
		b := Batch{}
		chosen := make(map[int]bool, l)
		for len(b.Leaves) < l {
			i := pick(len(members))
			if chosen[i] {
				continue
			}
			chosen[i] = true
			b.Leaves = append(b.Leaves, members[i])
		}
		for j := 0; j < l; j++ {
			b.Joins = append(b.Joins, nextID)
			nextID++
		}
		p := h.process(b)
		sum += float64(p.MulticastKeyCount())
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.06 {
		t.Fatalf("OFT empirical mean %v vs exact expectation %v (>6%% off)", got, want)
	}
}

func TestOFTCostHalfOfLKHBinary(t *testing.T) {
	// Quantify Section 2.1.1: per batch, OFT transmits roughly half the
	// keys of a binary LKH tree for the same membership and churn.
	lkh := newTestTree(t, 2, 83)
	populate(t, lkh, 512)
	oft, err := NewOFT(WithRand(keycrypt.NewDeterministicReader(84)))
	if err != nil {
		t.Fatal(err)
	}
	b := Batch{}
	for i := 1; i <= 512; i++ {
		b.Joins = append(b.Joins, MemberID(i))
	}
	if _, err := oft.Rekey(b); err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{1, 8, 32} {
		ratio := oft.ExpectedRekeyCost(l) / lkh.ExpectedRekeyCost(l)
		if ratio < 0.4 || ratio > 0.75 {
			t.Errorf("l=%d: OFT/LKH cost ratio %v, want ≈0.5–0.7", l, ratio)
		}
	}
}
