package keytree

import (
	"groupkey/internal/analytic"
)

// This file provides the balanced-cost bound the rebalancer compares the
// live tree against. A tree whose ExpectedRekeyCost sits at the bound is
// as cheap as any d-ary shape over the same membership can be (up to the
// near-equal split rounding); drift above the bound is structure the
// planner's amortized moves can claw back.

// BalancedRekeyCost returns the ExpectedRekeyCost of an ideally balanced
// d-ary tree over n members for a batch of l random departures: every
// node splits its leaves as evenly as possible among min(d, leaves)
// children, which is the shape the greedy least-leaves insertion policy
// converges to under join-only growth. Subtree costs depend only on the
// subtree's leaf count, so the recursion memoizes on it.
func BalancedRekeyCost(n, d, l int) float64 {
	if n <= 1 || l <= 0 || d < 2 {
		return 0
	}
	nf := float64(n)
	lf := float64(l)
	if lf > nf {
		lf = nf
	}
	memo := make(map[int]float64)
	var sub func(s int) float64
	sub = func(s int) float64 {
		if s <= 1 {
			return 0
		}
		if v, ok := memo[s]; ok {
			return v
		}
		k := d
		if s < k {
			k = s
		}
		pUpdate := 1 - analytic.ChooseRatio(nf, float64(s), lf)
		q, r := s/k, s%k
		total := 0.0
		for i := 0; i < k; i++ {
			cs := q
			if i < r {
				cs++
			}
			contribution := pUpdate - analytic.AllChosenProb(nf, float64(cs), lf)
			if contribution > 0 {
				total += contribution
			}
			total += sub(cs)
		}
		memo[s] = total
		return total
	}
	return sub(n)
}

// CostDrift reports how far the tree's expected rekey cost has drifted
// above the balanced bound for churn l: 1 means the shape is as cheap as
// a balanced tree, larger values mean structural debt. Degenerate trees
// (≤ 1 member) report 1.
func (t *Tree) CostDrift(l int) float64 {
	if t.root == nil || t.Size() <= 1 {
		return 1
	}
	bal := BalancedRekeyCost(t.Size(), t.degree, l)
	if bal <= 0 {
		return 1
	}
	return t.ExpectedRekeyCost(l) / bal
}
