package keytree

import (
	"math"
	"math/rand/v2"
	"testing"

	"groupkey/internal/analytic"
)

// TestPaperScaleTree exercises the tree at the paper's exact scale:
// N = 65536 members, d = 4, a Table-1-sized batch of 256 departures with
// 256 replacing joiners.
func TestPaperScaleTree(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale build is slow")
	}
	tr := newTestTree(t, 4, 6553)
	b := Batch{}
	for i := 1; i <= 65536; i++ {
		b.Joins = append(b.Joins, MemberID(i))
	}
	if _, err := tr.Rekey(b); err != nil {
		t.Fatalf("populate: %v", err)
	}
	if tr.Height() != 8 {
		t.Fatalf("height=%d, want 8 (full 4-ary tree)", tr.Height())
	}
	checkInvariants(t, tr)

	// White-box exact expectation vs the implementation-aware closed form
	// at the paper's own (N, L): they must agree to float precision on a
	// full balanced tree.
	exact := tr.ExpectedRekeyCost(256)
	closed := analytic.BatchRekeyCostImpl(65536, 256, 4)
	if math.Abs(exact-closed)/closed > 1e-5 {
		t.Fatalf("exact %v vs closed form %v at paper scale", exact, closed)
	}

	// One real batch of UNIFORMLY sampled departures lands within a few
	// percent of the expectation (a single sample of a concentrated
	// statistic; a stride-based selection would instead approach the
	// worst-case spread).
	rng := rand.New(rand.NewPCG(42, 43))
	perm := rng.Perm(65536)
	batch := Batch{}
	for i := 0; i < 256; i++ {
		batch.Leaves = append(batch.Leaves, MemberID(perm[i]+1))
		batch.Joins = append(batch.Joins, MemberID(100000+i))
	}
	p, err := tr.Rekey(batch)
	if err != nil {
		t.Fatalf("paper-scale rekey: %v", err)
	}
	got := float64(p.MulticastKeyCount())
	if math.Abs(got-exact)/exact > 0.05 {
		t.Fatalf("one batch cost %v, expectation %v (>5%% off)", got, exact)
	}
	checkInvariants(t, tr)
	if tr.Size() != 65536 {
		t.Fatalf("Size=%d", tr.Size())
	}
}
