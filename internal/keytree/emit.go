package keytree

import (
	"crypto/rand"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"groupkey/internal/keycrypt"
)

// This file is the parallel rekey emission engine: the replacement for the
// serial Phase 5/6 of Rekey (kept verbatim in emitLegacy as the oracle).
//
// The engine splits emission into two steps:
//
//  1. Plan (single-threaded): sort the dirty nodes by precomputed depth,
//     build every Item's metadata (kind, level, receivers) and draw one
//     nonce per wrap from the tree's entropy source in the exact order the
//     serial emitter would. Receiver lists are built bottom-up — a dirty
//     node's list is the linear merge of its children's already-sorted
//     lists, clean subtrees are walked exactly once — instead of the
//     legacy walk-and-sort per wrap.
//  2. Emit (parallel): fan the AES-GCM seals out over a bounded worker
//     pool, each job writing into its pre-assigned payload slot through
//     the tree's cached-key-schedule Wrapper.
//
// Because nonces and slots are fixed during planning, the payload is
// byte-for-byte identical to the serial emitter's for any worker count.

// wrapJob is one planned AES-GCM seal: everything a worker needs, with the
// destination slot fixed before the fan-out.
type wrapJob struct {
	payload keycrypt.Key
	wrapper keycrypt.Key
	nonce   [keycrypt.NonceSize]byte
	dst     *keycrypt.WrappedKey
}

// minParallelJobs is the fan-out threshold: below it, goroutine start-up
// costs more than the AES work it would spread.
const minParallelJobs = 32

// emitPlanned runs the plan/emit engine over the dirty set.
func (t *Tree) emitPlanned(dirty map[*Node]*dirtyInfo, joiners map[MemberID]bool) (*Payload, error) {
	nodes, depths := sortDirtyNodes(dirty)
	rng := t.gen.Rand
	if rng == nil {
		rng = rand.Reader
	}
	nonces := nonceDrawer{rng: rng}

	// Upper bounds on wrap counts (skips only shrink them), so the item and
	// job slices are allocated once instead of doubling their way up.
	itemCap := 0
	for _, n := range nodes {
		if info := dirty[n]; info.departure || info.isNew {
			itemCap += len(n.children)
		} else {
			itemCap++
		}
	}
	joinerCap := 0
	for m := range joiners {
		joinerCap += t.leaves[m].Depth()
	}

	p := &Payload{Items: make([]Item, 0, itemCap)}
	if joinerCap > 0 {
		p.JoinerItems = make([]Item, 0, joinerCap)
	}
	recv := newReceiverIndex(t, dirty, joiners)
	itemJobs := make([]wrapJob, 0, itemCap)
	joinerJobs := make([]wrapJob, 0, joinerCap)

	// Phase 5 plan: child and old-key wraps, deepest nodes first.
	for i, n := range nodes {
		info := dirty[n]
		level := depths[i]
		if info.departure || info.isNew {
			for _, c := range n.children {
				receivers := recv.under(c)
				if len(receivers) == 0 {
					// Every member under c is a joiner of this batch and
					// receives the key through its JoinerWrap path instead;
					// multicasting this wrap would carry zero information.
					continue
				}
				nonce, err := nonces.next()
				if err != nil {
					return nil, err
				}
				p.Items = append(p.Items, Item{Kind: ChildWrap, Level: level, Receivers: receivers})
				itemJobs = append(itemJobs, wrapJob{payload: n.key, wrapper: c.key, nonce: nonce})
			}
		} else {
			receivers := recv.under(n)
			if len(receivers) == 0 {
				continue
			}
			nonce, err := nonces.next()
			if err != nil {
				return nil, err
			}
			p.Items = append(p.Items, Item{Kind: OldKeyWrap, Level: level, Receivers: receivers})
			itemJobs = append(itemJobs, wrapJob{payload: n.key, wrapper: info.oldKey, nonce: nonce})
		}
	}

	// Phase 6 plan: joiner path deliveries, ascending member order.
	joinerIDs := make([]MemberID, 0, len(joiners))
	for m := range joiners {
		joinerIDs = append(joinerIDs, m)
	}
	slices.Sort(joinerIDs)
	for _, m := range joinerIDs {
		leaf := t.leaves[m]
		level := leaf.Depth()
		for n := leaf.parent; n != nil; n = n.parent {
			level--
			nonce, err := nonces.next()
			if err != nil {
				return nil, err
			}
			p.JoinerItems = append(p.JoinerItems, Item{Kind: JoinerWrap, Level: level, Receivers: []MemberID{m}})
			joinerJobs = append(joinerJobs, wrapJob{payload: n.key, wrapper: leaf.key, nonce: nonce})
		}
	}

	// Both slices are final: pin destination slots 1:1, then emit.
	for i := range itemJobs {
		itemJobs[i].dst = &p.Items[i].Wrapped
	}
	for i := range joinerJobs {
		joinerJobs[i].dst = &p.JoinerItems[i].Wrapped
	}
	jobs := itemJobs
	if len(jobs) == 0 {
		jobs = joinerJobs
	} else if len(joinerJobs) > 0 {
		jobs = append(jobs, joinerJobs...)
	}
	if err := t.runWrapJobs(jobs); err != nil {
		return nil, err
	}
	return p, nil
}

// nonceDrawer reads wrap nonces in canonical planning order — so emission
// scheduling cannot perturb payload bytes — through one reusable buffer: a
// per-draw stack array would escape into the io.Reader call and cost an
// allocation per wrap.
type nonceDrawer struct {
	rng io.Reader
	buf [keycrypt.NonceSize]byte
}

func (d *nonceDrawer) next() ([keycrypt.NonceSize]byte, error) {
	if _, err := io.ReadFull(d.rng, d.buf[:]); err != nil {
		return d.buf, fmt.Errorf("keytree: drawing wrap nonce: %w", err)
	}
	return d.buf, nil
}

// sortDirtyNodes orders the dirty set deepest-first (ties by key ID) with
// each node's depth computed once up front, instead of two O(depth) Depth()
// walks inside every sort comparison.
func sortDirtyNodes(dirty map[*Node]*dirtyInfo) ([]*Node, []int) {
	type nodeDepth struct {
		n *Node
		d int
	}
	byDepth := make([]nodeDepth, 0, len(dirty))
	for n := range dirty {
		byDepth = append(byDepth, nodeDepth{n: n, d: n.Depth()})
	}
	sort.Slice(byDepth, func(i, j int) bool {
		if byDepth[i].d != byDepth[j].d {
			return byDepth[i].d > byDepth[j].d
		}
		return byDepth[i].n.key.ID < byDepth[j].n.key.ID
	})
	nodes := make([]*Node, len(byDepth))
	depths := make([]int, len(byDepth))
	for i, nd := range byDepth {
		nodes[i] = nd.n
		depths[i] = nd.d
	}
	return nodes, depths
}

// receiverIndex computes sorted receiver lists (members under a node,
// batch joiners excluded) with memoization: since dirtiness is
// upward-closed, a dirty node's list is the merge of its children's lists,
// and each clean subtree on the dirty frontier is walked exactly once.
// Lists are shared between items; they are read-only by contract.
type receiverIndex struct {
	tree    *Tree
	dirty   map[*Node]*dirtyInfo
	exclude map[MemberID]bool
	memo    map[*Node][]MemberID
}

func newReceiverIndex(t *Tree, dirty map[*Node]*dirtyInfo, exclude map[MemberID]bool) *receiverIndex {
	return &receiverIndex{
		tree:    t,
		dirty:   dirty,
		exclude: exclude,
		// Memo holds the dirty nodes plus their immediate clean children.
		memo: make(map[*Node][]MemberID, 2*len(dirty)),
	}
}

// under returns the sorted receivers beneath n. The result may alias lists
// stored in other Items' Receivers; callers must not mutate it.
func (r *receiverIndex) under(n *Node) []MemberID {
	if out, ok := r.memo[n]; ok {
		return out
	}
	var out []MemberID
	if _, isDirty := r.dirty[n]; !isDirty || n.IsLeaf() {
		// Clean (or leaf) subtree: collect and sort once.
		out = collectMembers(n, r.exclude, make([]MemberID, 0, n.leaves))
		slices.Sort(out)
	} else {
		lists := make([][]MemberID, 0, len(n.children))
		for _, c := range n.children {
			lists = append(lists, r.under(c))
		}
		out = mergeSorted(lists)
	}
	r.memo[n] = out
	return out
}

// collectMembers appends the non-excluded members of n's subtree to out in
// tree order (sorted afterwards by the caller).
func collectMembers(n *Node, exclude map[MemberID]bool, out []MemberID) []MemberID {
	if n.member != 0 {
		if !exclude[n.member] {
			out = append(out, n.member)
		}
		return out
	}
	for _, c := range n.children {
		out = collectMembers(c, exclude, out)
	}
	return out
}

// mergeSorted merges already-sorted lists by cascaded two-way merges — a
// tight two-pointer loop per pair beats a d-wide min scan per element. A
// single non-empty input is returned as-is (lists are shared read-only).
func mergeSorted(lists [][]MemberID) []MemberID {
	nonEmpty := lists[:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
			total += len(l)
		}
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		return nonEmpty[0]
	case 2:
		return merge2(nonEmpty[0], nonEmpty[1], make([]MemberID, 0, total))
	}
	// Merge the two shortest lists first so later passes move fewer
	// elements; with tree fan-out d the cascade is at most d-1 merges,
	// ping-ponging between two buffers (merge2 reads acc, writes spare).
	sort.Slice(nonEmpty, func(i, j int) bool { return len(nonEmpty[i]) < len(nonEmpty[j]) })
	acc := merge2(nonEmpty[0], nonEmpty[1], make([]MemberID, 0, total))
	spare := make([]MemberID, 0, total)
	for _, l := range nonEmpty[2:] {
		next := merge2(acc, l, spare[:0])
		spare = acc
		acc = next
	}
	return acc
}

func merge2(a, b, out []MemberID) []MemberID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// runWrapJobs executes the planned seals, inline or across the worker
// pool. Workers only read the tree's Wrapper cache and write disjoint
// pre-assigned slots, so scheduling cannot affect payload bytes.
func (t *Tree) runWrapJobs(jobs []wrapJob) error {
	if len(jobs) == 0 {
		return nil
	}
	workers := t.WrapWorkers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 || len(jobs) < minParallelJobs {
		for i := range jobs {
			if err := t.runWrapJob(&jobs[i]); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || failed.Load() {
					return
				}
				if err := t.runWrapJob(&jobs[i]); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

func (t *Tree) runWrapJob(j *wrapJob) error {
	w, err := t.wrapper.WrapNonce(j.payload, j.wrapper, j.nonce)
	if err != nil {
		return fmt.Errorf("keytree: wrapping %s under %s: %w", j.payload.ID, j.wrapper.ID, err)
	}
	*j.dst = w
	return nil
}
