package keytree

import (
	"fmt"
	"sort"
	"testing"

	"groupkey/internal/keycrypt"
)

func benchTree(b *testing.B, degree, n int, opts ...Option) *Tree {
	b.Helper()
	tr, err := New(degree, append([]Option{WithRand(keycrypt.NewDeterministicReader(uint64(n)))}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	batch := Batch{}
	for i := 1; i <= n; i++ {
		batch.Joins = append(batch.Joins, MemberID(i))
	}
	if _, err := tr.Rekey(batch); err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkJoinLeaveCycle(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := benchTree(b, 4, n)
			next := MemberID(n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Join(next); err != nil {
					b.Fatal(err)
				}
				if _, err := tr.Leave(next); err != nil {
					b.Fatal(err)
				}
				next++
			}
		})
	}
}

func BenchmarkBatchRekey(b *testing.B) {
	for _, tc := range []struct{ n, l int }{
		{1024, 16}, {4096, 64}, {65536, 256},
	} {
		b.Run(fmt.Sprintf("n=%d_l=%d", tc.n, tc.l), func(b *testing.B) {
			tr := benchTree(b, 4, tc.n)
			next := MemberID(tc.n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				members := tr.Members()
				batch := Batch{}
				for j := 0; j < tc.l; j++ {
					batch.Leaves = append(batch.Leaves, members[(j*997)%len(members)])
					batch.Joins = append(batch.Joins, next)
					next++
				}
				p, err := tr.Rekey(batch)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(p.MulticastKeyCount()), "keys/batch")
				}
			}
		})
	}
}

// BenchmarkBatchRekeyEngine vs BenchmarkBatchRekeyLegacy isolates what the
// plan/emit engine (memoized receiver merging, cached AES schedules,
// zero-alloc wraps, parallel emission) buys over the serial baseline at
// identical batch shapes.
func benchBatchRekeyVariant(b *testing.B, opts ...Option) {
	for _, tc := range []struct{ n, l int }{
		{4096, 64}, {65536, 256},
	} {
		b.Run(fmt.Sprintf("n=%d_l=%d", tc.n, tc.l), func(b *testing.B) {
			tr := benchTree(b, 4, tc.n, opts...)
			next := MemberID(tc.n + 1)
			b.ReportAllocs()
			b.ResetTimer()
			keys := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer() // batch construction is harness cost, not rekey cost
				members := tr.Members()
				batch := Batch{}
				for j := 0; j < tc.l; j++ {
					batch.Leaves = append(batch.Leaves, members[(j*997)%len(members)])
					batch.Joins = append(batch.Joins, next)
					next++
				}
				b.StartTimer()
				p, err := tr.Rekey(batch)
				if err != nil {
					b.Fatal(err)
				}
				keys += p.TotalKeyCount()
			}
			b.ReportMetric(float64(keys)/b.Elapsed().Seconds(), "keys/sec")
		})
	}
}

func BenchmarkBatchRekeyEngine(b *testing.B) {
	benchBatchRekeyVariant(b)
}

func BenchmarkBatchRekeyLegacy(b *testing.B) {
	benchBatchRekeyVariant(b, WithLegacyRekey())
}

// BenchmarkSortDirtyNodes compares the engine's precomputed-depth sort
// against the legacy comparator that re-walks parent chains (O(depth) per
// comparison) on a realistic dirty set.
func BenchmarkSortDirtyNodes(b *testing.B) {
	tr := benchTree(b, 4, 65536)
	members := tr.Members()
	batch := Batch{}
	for j := 0; j < 256; j++ {
		batch.Leaves = append(batch.Leaves, members[(j*997)%len(members)])
	}
	// Rebuild the dirty set the way Rekey would, without emitting.
	dirty := make(map[*Node]*dirtyInfo)
	for _, m := range batch.Leaves {
		for n := tr.leaves[m].parent; n != nil; n = n.parent {
			if _, ok := dirty[n]; !ok {
				dirty[n] = &dirtyInfo{oldKey: n.key, departure: true}
			}
		}
	}
	b.Run("precomputed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sortDirtyNodes(dirty)
		}
	})
	b.Run("legacy-comparator", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nodes := make([]*Node, 0, len(dirty))
			for n := range dirty {
				nodes = append(nodes, n)
			}
			sort.Slice(nodes, func(i, j int) bool {
				di, dj := nodes[i].Depth(), nodes[j].Depth()
				if di != dj {
					return di > dj
				}
				return nodes[i].key.ID < nodes[j].key.ID
			})
		}
	})
}

func BenchmarkPathLookup(b *testing.B) {
	tr := benchTree(b, 4, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Path(MemberID(i%65536 + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOFTBatchRekey(b *testing.B) {
	for _, tc := range []struct{ n, l int }{
		{1024, 16}, {4096, 64},
	} {
		b.Run(fmt.Sprintf("n=%d_l=%d", tc.n, tc.l), func(b *testing.B) {
			tr, err := NewOFT(WithRand(keycrypt.NewDeterministicReader(uint64(tc.n))))
			if err != nil {
				b.Fatal(err)
			}
			batch := Batch{}
			for i := 1; i <= tc.n; i++ {
				batch.Joins = append(batch.Joins, MemberID(i))
			}
			if _, err := tr.Rekey(batch); err != nil {
				b.Fatal(err)
			}
			next := MemberID(tc.n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				members := tr.Members()
				rb := Batch{}
				for j := 0; j < tc.l; j++ {
					rb.Leaves = append(rb.Leaves, members[(j*997)%len(members)])
					rb.Joins = append(rb.Joins, next)
					next++
				}
				p, err := tr.Rekey(rb)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(p.MulticastKeyCount()), "keys/batch")
				}
			}
		})
	}
}

func BenchmarkExpectedRekeyCost(b *testing.B) {
	tr := benchTree(b, 4, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.ExpectedRekeyCost(256)
	}
}
