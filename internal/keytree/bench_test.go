package keytree

import (
	"fmt"
	"testing"

	"groupkey/internal/keycrypt"
)

func benchTree(b *testing.B, degree, n int) *Tree {
	b.Helper()
	tr, err := New(degree, WithRand(keycrypt.NewDeterministicReader(uint64(n))))
	if err != nil {
		b.Fatal(err)
	}
	batch := Batch{}
	for i := 1; i <= n; i++ {
		batch.Joins = append(batch.Joins, MemberID(i))
	}
	if _, err := tr.Rekey(batch); err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkJoinLeaveCycle(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := benchTree(b, 4, n)
			next := MemberID(n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Join(next); err != nil {
					b.Fatal(err)
				}
				if _, err := tr.Leave(next); err != nil {
					b.Fatal(err)
				}
				next++
			}
		})
	}
}

func BenchmarkBatchRekey(b *testing.B) {
	for _, tc := range []struct{ n, l int }{
		{1024, 16}, {4096, 64}, {65536, 256},
	} {
		b.Run(fmt.Sprintf("n=%d_l=%d", tc.n, tc.l), func(b *testing.B) {
			tr := benchTree(b, 4, tc.n)
			next := MemberID(tc.n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				members := tr.Members()
				batch := Batch{}
				for j := 0; j < tc.l; j++ {
					batch.Leaves = append(batch.Leaves, members[(j*997)%len(members)])
					batch.Joins = append(batch.Joins, next)
					next++
				}
				p, err := tr.Rekey(batch)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(p.MulticastKeyCount()), "keys/batch")
				}
			}
		})
	}
}

func BenchmarkPathLookup(b *testing.B) {
	tr := benchTree(b, 4, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Path(MemberID(i%65536 + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOFTBatchRekey(b *testing.B) {
	for _, tc := range []struct{ n, l int }{
		{1024, 16}, {4096, 64},
	} {
		b.Run(fmt.Sprintf("n=%d_l=%d", tc.n, tc.l), func(b *testing.B) {
			tr, err := NewOFT(WithRand(keycrypt.NewDeterministicReader(uint64(tc.n))))
			if err != nil {
				b.Fatal(err)
			}
			batch := Batch{}
			for i := 1; i <= tc.n; i++ {
				batch.Joins = append(batch.Joins, MemberID(i))
			}
			if _, err := tr.Rekey(batch); err != nil {
				b.Fatal(err)
			}
			next := MemberID(tc.n + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				members := tr.Members()
				rb := Batch{}
				for j := 0; j < tc.l; j++ {
					rb.Leaves = append(rb.Leaves, members[(j*997)%len(members)])
					rb.Joins = append(rb.Joins, next)
					next++
				}
				p, err := tr.Rekey(rb)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(p.MulticastKeyCount()), "keys/batch")
				}
			}
		})
	}
}

func BenchmarkExpectedRekeyCost(b *testing.B) {
	tr := benchTree(b, 4, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.ExpectedRekeyCost(256)
	}
}
