package analytic

import (
	"fmt"
	"math"
)

// Level describes one interior level of the (possibly partially-full)
// logical key tree as seen by the analytic model.
type Level struct {
	// Index is the level number: 0 is the root, increasing downward.
	Index int
	// Keys is the (possibly fractional) number of key nodes at this level.
	Keys float64
	// Subtree is the average number of member leaves under one key node at
	// this level (S_i in the paper's Appendix A).
	Subtree float64
}

// PUpdate is the probability that one key at this level is updated when l
// of the n members depart in a batch — equation (11) of Appendix A:
// 1 − C(n−S_i, l)/C(n, l).
func (lv Level) PUpdate(n, l float64) float64 {
	return 1 - chooseRatio(n, lv.Subtree, l)
}

// TreeLevels lays out the interior levels of a balanced d-ary key tree with
// n member leaves. For n = d^h it reproduces the paper's full-tree layout
// exactly (d^i keys at level i, d^{h-i} leaves per key). For other n it
// models the partially-full balanced tree the key server actually builds:
// levels 0..h−2 are complete (d^i keys, n/d^i leaves each on average), and
// at the deepest interior level h−1 only part of the slots are interior
// keys — each slot that is a key holds exactly d leaves, the rest hold a
// single leaf directly. Counting leaves gives
//
//	(d^{h−1} − x) + x·d = n  ⇒  x = (n − d^{h−1}) / (d − 1)
//
// interior keys at level h−1. This layout is continuous in n (as n crosses
// a power of d, the new level enters with weight zero), which the
// steady-state queueing model needs: it produces fractional partition
// sizes.
func TreeLevels(n float64, d int) []Level {
	if n <= 1 || d < 2 {
		return nil
	}
	df := float64(d)
	hReal := math.Log(n) / math.Log(df)
	// Guard against float fuzz for exact powers (e.g. log4(65536) = 7.999…).
	hCeil := int(math.Ceil(hReal - 1e-9))
	if hCeil < 1 {
		hCeil = 1
	}
	levels := make([]Level, 0, hCeil)
	for i := 0; i < hCeil-1; i++ {
		keys := math.Pow(df, float64(i))
		levels = append(levels, Level{Index: i, Keys: keys, Subtree: n / keys})
	}
	deepSlots := math.Pow(df, float64(hCeil-1))
	deepKeys := (n - deepSlots) / (df - 1)
	if deepKeys > 0 {
		levels = append(levels, Level{Index: hCeil - 1, Keys: deepKeys, Subtree: df})
	}
	return levels
}

// BatchRekeyCost is Ne(N, L): the expected number of encrypted keys the key
// server multicasts for one batched rekey of a balanced degree-d key tree
// holding n members, of which l depart (and l join, taking the vacated
// leaves — the J = L regime of Appendix A). Each updated key at level i is
// encrypted under each of its d children, so
//
//	Ne = Σ_{i=0}^{h−1} d · d^i · P_i,   P_i = 1 − C(N−S_i, L)/C(N, L).
//
// n and l may be fractional (outputs of the steady-state queueing model).
func BatchRekeyCost(n, l float64, d int) float64 {
	if n <= 1 || l <= 0 {
		return 0
	}
	if l > n {
		l = n
	}
	total := 0.0
	for _, lv := range TreeLevels(n, d) {
		p := 1 - chooseRatio(n, lv.Subtree, l)
		total += float64(d) * lv.Keys * p
	}
	return total
}

// BatchRekeyCostOFT is the one-way-function-tree analogue of Ne(N, L)
// (Section 2.1.1 notes the paper's optimizations apply to OFT too). OFT
// trees are binary; an updated non-root node costs ONE blinded-key
// transmission to its sibling subtree instead of LKH's d child wraps, and
// each of the l replaced leaves contributes one blind of its fresh secret:
//
//	NeOFT = Σ_{i=1}^{h−1} 2^i · P_i + l.
//
// This mirrors keytree.(*OFT).ExpectedRekeyCost evaluated on a full tree.
func BatchRekeyCostOFT(n, l float64) float64 {
	if n <= 1 || l <= 0 {
		return 0
	}
	if l > n {
		l = n
	}
	total := l
	for _, lv := range TreeLevels(n, 2) {
		if lv.Index == 0 {
			continue // the root's blind is never transmitted
		}
		total += lv.Keys * lv.PUpdate(n, l)
	}
	return total
}

// IndividualRekeyCost is the expected multicast cost of processing l
// departures one at a time (no batching): l times the cost of a single
// departure, about d·⌈log_d n⌉ keys each. Used by the batching ablation.
func IndividualRekeyCost(n, l float64, d int) float64 {
	if n <= 1 || l <= 0 {
		return 0
	}
	return l * BatchRekeyCost(n, 1, d)
}

// ReplacementWrapCorrection quantifies the gap between the paper's Ne and
// what a careful implementation multicasts under the J = L replacement
// regime: a child whose entire subtree departed (and was re-filled with
// joiners) needs no wrap — the joiners receive their keys through the
// bootstrap path. The correction sums, over every non-root node c, the
// probability that all of c's leaves are among the l departures; it is
// dominated by the leaf level, where it equals exactly l.
func ReplacementWrapCorrection(n, l float64, d int) float64 {
	if n <= 1 || l <= 0 {
		return 0
	}
	if l > n {
		l = n
	}
	correction := l // leaf level: Σ over n leaves of l/n
	for _, lv := range TreeLevels(n, d) {
		if lv.Index == 0 {
			continue // the root is nobody's child
		}
		correction += lv.Keys * AllChosenProb(n, lv.Subtree, l)
	}
	return correction
}

// BatchRekeyCostImpl is the implementation-aware variant of Ne(N, L): the
// paper's closed form minus the redundant replaced-subtree wraps this
// library never sends. Use it when validating the real system; use
// BatchRekeyCost when reproducing the paper's figures.
func BatchRekeyCostImpl(n, l float64, d int) float64 {
	cost := BatchRekeyCost(n, l, d) - ReplacementWrapCorrection(n, l, d)
	if cost < 0 {
		return 0
	}
	return cost
}

// WorstCaseBatchRekeyCost bounds Ne(N, L) from above: the adversarial
// placement spreads the l departures over distinct subtrees as high as
// possible, updating min(d^i, l) keys at every level (Yang et al.'s
// worst-case analysis, referenced in Section 2.1.1):
//
//	Ne_worst = Σ_{i=0}^{h−1} d · min(d^i, l).
func WorstCaseBatchRekeyCost(n, l float64, d int) float64 {
	if n <= 1 || l <= 0 {
		return 0
	}
	if l > n {
		l = n
	}
	total := 0.0
	for _, lv := range TreeLevels(n, d) {
		total += float64(d) * math.Min(lv.Keys, l)
	}
	return total
}

// BestCaseBatchRekeyCost bounds Ne(N, L) from below: all l departures
// cluster in one contiguous block of leaves, so level i updates only
// ⌈l/S_i⌉ keys.
func BestCaseBatchRekeyCost(n, l float64, d int) float64 {
	if n <= 1 || l <= 0 {
		return 0
	}
	if l > n {
		l = n
	}
	total := 0.0
	for _, lv := range TreeLevels(n, d) {
		updated := math.Ceil(l / lv.Subtree)
		total += float64(d) * math.Min(updated, lv.Keys)
	}
	return total
}

// NaiveUnicastCost is the baseline without a key tree: the server encrypts
// the new group key individually for every remaining member, once per
// departure.
func NaiveUnicastCost(n, l float64) float64 {
	if n <= 1 || l <= 0 {
		return 0
	}
	return l * (n - 1)
}

// UpdatedKeysPerLevel returns, for each interior level, the expected number
// of updated keys U(l) = d^l · P_l (used by the transport models).
func UpdatedKeysPerLevel(n, l float64, d int) []float64 {
	levels := TreeLevels(n, d)
	out := make([]float64, len(levels))
	for i, lv := range levels {
		p := 1 - chooseRatio(n, lv.Subtree, l)
		out[i] = lv.Keys * p
	}
	return out
}

// String renders a level for debugging.
func (lv Level) String() string {
	return fmt.Sprintf("level %d: %.2f keys × %.2f leaves", lv.Index, lv.Keys, lv.Subtree)
}
