// Package analytic implements the closed-form performance models the paper
// uses for its entire evaluation:
//
//   - Appendix A: the expected number of encrypted keys for one batched LKH
//     rekey, Ne(N, L), extended to partially-full trees;
//   - Section 3.3.1: the two-class open queueing model of the two-partition
//     schemes (QT, TT, PT) and the one-keytree baseline, equations (1)–(10);
//   - Appendix B: the WKA-BKR reliable-transport bandwidth model,
//     equations (11)–(15), extended to heterogeneous per-receiver loss so
//     that the loss-homogenized, random-split and misplacement scenarios of
//     Section 4.3 can be evaluated;
//   - the proactive-FEC transport model referenced in Section 4.4.
//
// All quantities are real-valued: the steady-state queueing model produces
// fractional member counts, so the combinatorial terms are continued with
// the gamma function.
package analytic

import "math"

// lchoose returns log C(n, k) for real n ≥ k ≥ 0, via the gamma function.
// It returns -Inf when the coefficient is zero (k < 0 or k > n).
func lchoose(n, k float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(n + 1)
	lk, _ := math.Lgamma(k + 1)
	lnk, _ := math.Lgamma(n - k + 1)
	return ln - lk - lnk
}

// ChooseRatio returns C(n-s, l) / C(n, l) for real arguments — the
// probability that none of l departures, drawn uniformly without
// replacement from n leaves, falls inside a subtree of s leaves. It is
// exported for white-box cost analysis of concrete tree shapes
// (keytree.Tree.ExpectedRekeyCost).
func ChooseRatio(n, s, l float64) float64 {
	return chooseRatio(n, s, l)
}

func chooseRatio(n, s, l float64) float64 {
	if l <= 0 {
		return 1
	}
	if s <= 0 {
		return 1
	}
	if n-s < l {
		return 0 // fewer than l leaves outside the subtree: impossible to miss it
	}
	return math.Exp(lchoose(n-s, l) - lchoose(n, l))
}

// AllChosenProb returns C(n−s, l−s)/C(n, l): the probability that ALL s
// leaves of a subtree are among the l departures drawn uniformly without
// replacement from n leaves. Used by the exact per-tree cost analysis —
// a child whose members all departed (and were replaced by joiners)
// receives no wrap.
func AllChosenProb(n, s, l float64) float64 {
	if s <= 0 {
		return 1
	}
	if l < s {
		return 0
	}
	return math.Exp(lchoose(n-s, l-s) - lchoose(n, l))
}

// binomPMF returns the Binomial(n, p) probability mass at j, computed in
// log space for numerical stability.
func binomPMF(n int, p float64, j int) float64 {
	if j < 0 || j > n {
		return 0
	}
	if p <= 0 {
		if j == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if j == n {
			return 1
		}
		return 0
	}
	lp := lchoose(float64(n), float64(j)) + float64(j)*math.Log(p) + float64(n-j)*math.Log(1-p)
	return math.Exp(lp)
}

// binomCDF returns P[X ≤ j] for X ~ Binomial(n, p).
func binomCDF(n int, p float64, j int) float64 {
	if j < 0 {
		return 0
	}
	if j >= n {
		return 1
	}
	sum := 0.0
	for i := 0; i <= j; i++ {
		sum += binomPMF(n, p, i)
	}
	if sum > 1 {
		return 1
	}
	return sum
}
