package analytic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDepartProb(t *testing.T) {
	tests := []struct {
		t, m, want float64
	}{
		{0, 180, 0},
		{180, 180, 1 - math.Exp(-1)},
		{math.Inf(1), 180, 1},
	}
	for _, tt := range tests {
		if got := DepartProb(tt.t, tt.m); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("DepartProb(%v,%v)=%v, want %v", tt.t, tt.m, got, tt.want)
		}
	}
}

func TestSteadyStateDefaults(t *testing.T) {
	p := DefaultTwoPartitionParams()
	s, err := p.SteadyState()
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	// Join rate: J = N / (α/Pr(Tp,Ms) + (1−α)/Pr(Tp,Ml)) ≈ 1683.8 for
	// Table 1 defaults.
	if s.J < 1600 || s.J > 1800 {
		t.Errorf("J=%v, want ≈1684", s.J)
	}
	// Flow conservation.
	if !almostEqual(s.Lcs+s.Lcl, s.J, 1e-9) {
		t.Errorf("Lcs+Lcl=%v ≠ J=%v", s.Lcs+s.Lcl, s.J)
	}
	if !almostEqual(s.Ncs+s.Ncl, p.N, 1e-6) {
		t.Errorf("Ncs+Ncl=%v ≠ N=%v", s.Ncs+s.Ncl, p.N)
	}
	if !almostEqual(s.Ns+s.Nl, p.N, 1e-6) {
		t.Errorf("Ns+Nl=%v ≠ N=%v", s.Ns+s.Nl, p.N)
	}
	if !almostEqual(s.Ls+s.Lm, s.J, 1e-9) {
		t.Errorf("Ls+Lm=%v ≠ J=%v (S-partition flow)", s.Ls+s.Lm, s.J)
	}
	if s.Ll != s.Lm {
		t.Errorf("steady state requires Ll=Lm, got %v vs %v", s.Ll, s.Lm)
	}
	// With α=0.8 and short mean 3 min, the S-partition holds a visible
	// slice of the group but far from all of it.
	if s.Ns < 1000 || s.Ns > p.N/2 {
		t.Errorf("Ns=%v implausible", s.Ns)
	}
}

func TestSteadyStateValidation(t *testing.T) {
	bad := []TwoPartitionParams{
		{Tp: 0, N: 100, Degree: 4, Ms: 1, Ml: 1, Alpha: 0.5},
		{Tp: 60, N: 1, Degree: 4, Ms: 1, Ml: 1, Alpha: 0.5},
		{Tp: 60, N: 100, Degree: 1, Ms: 1, Ml: 1, Alpha: 0.5},
		{Tp: 60, N: 100, Degree: 4, K: -1, Ms: 1, Ml: 1, Alpha: 0.5},
		{Tp: 60, N: 100, Degree: 4, Ms: 0, Ml: 1, Alpha: 0.5},
		{Tp: 60, N: 100, Degree: 4, Ms: 1, Ml: 1, Alpha: 1.5},
	}
	for i, p := range bad {
		if _, err := p.SteadyState(); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: err=%v, want ErrBadParams", i, err)
		}
	}
}

func TestKZeroFallsBackToOneKeyTree(t *testing.T) {
	// "The previous one-keytree scheme is actually a special case of our
	// schemes where the S-period Ts is 0."
	p := DefaultTwoPartitionParams()
	p.K = 0
	one, err := p.CostOneKeyTree()
	if err != nil {
		t.Fatalf("CostOneKeyTree: %v", err)
	}
	qt, err := p.CostQT()
	if err != nil {
		t.Fatalf("CostQT: %v", err)
	}
	tt, err := p.CostTT()
	if err != nil {
		t.Fatalf("CostTT: %v", err)
	}
	if !almostEqual(qt, one, 1e-9) || !almostEqual(tt, one, 1e-9) {
		t.Fatalf("K=0: qt=%v tt=%v one=%v, all must coincide", qt, tt, one)
	}
}

func TestFig3DefaultKSweep(t *testing.T) {
	// Paper Fig. 3 observations at Table 1 defaults:
	//  1. TT achieves a large reduction near K=10 (paper: up to 25%).
	//  2. TT outperforms QT for large K.
	//  3. PT is best and independent of K.
	p := DefaultTwoPartitionParams()
	one, _ := p.CostOneKeyTree()

	ttAt10, _ := p.CostTT()
	red := (one - ttAt10) / one
	if red < 0.15 || red > 0.35 {
		t.Errorf("TT reduction at K=10 is %.1f%%, paper shows ≈25%%", 100*red)
	}

	p20 := p
	p20.K = 20
	qt20, _ := p20.CostQT()
	tt20, _ := p20.CostTT()
	if tt20 >= qt20 {
		t.Errorf("at K=20 TT (%v) should beat QT (%v)", tt20, qt20)
	}

	pt10, _ := p.CostPT()
	pt20, _ := p20.CostPT()
	if !almostEqual(pt10, pt20, 1e-9) {
		t.Errorf("PT cost depends on K: %v vs %v", pt10, pt20)
	}
	ptRed := (one - pt10) / one
	if ptRed < 0.3 || ptRed > 0.5 {
		t.Errorf("PT reduction %.1f%%, paper shows up to 40%%", 100*ptRed)
	}
}

func TestFig4AlphaSweep(t *testing.T) {
	// Paper Fig. 4 observations (K=10):
	//  1. For α > 0.6 both TT and QT beat the one-keytree scheme.
	//  2. Peak improvement ≈31.4% at α = 0.9.
	//  3. For α ≤ 0.4 the one-keytree scheme wins.
	//  4. PT always wins.
	base := DefaultTwoPartitionParams()

	for _, alpha := range []float64{0.7, 0.8, 0.9} {
		p := base
		p.Alpha = alpha
		one, _ := p.CostOneKeyTree()
		qt, _ := p.CostQT()
		tt, _ := p.CostTT()
		if qt >= one || tt >= one {
			t.Errorf("α=%v: two-partition should win (one=%v qt=%v tt=%v)", alpha, one, qt, tt)
		}
	}
	for _, alpha := range []float64{0.0, 0.2, 0.4} {
		p := base
		p.Alpha = alpha
		one, _ := p.CostOneKeyTree()
		qt, _ := p.CostQT()
		tt, _ := p.CostTT()
		if qt <= one || tt <= one {
			t.Errorf("α=%v: one-keytree should win (one=%v qt=%v tt=%v)", alpha, one, qt, tt)
		}
	}

	p9 := base
	p9.Alpha = 0.9
	one, _ := p9.CostOneKeyTree()
	qt, _ := p9.CostQT()
	bestRed := (one - qt) / one
	if tt, _ := p9.CostTT(); (one-tt)/one > bestRed {
		bestRed = (one - tt) / one
	}
	if bestRed < 0.25 || bestRed > 0.38 {
		t.Errorf("best reduction at α=0.9 is %.1f%%, paper reports 31.4%%", 100*bestRed)
	}

	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p := base
		p.Alpha = alpha
		pt, _ := p.CostPT()
		qt, _ := p.CostQT()
		tt, _ := p.CostTT()
		if pt > qt+1e-9 || pt > tt+1e-9 {
			t.Errorf("α=%v: PT (%v) must not lose to QT (%v) or TT (%v)", alpha, pt, qt, tt)
		}
	}
}

func TestFig5GroupSizeSweep(t *testing.T) {
	// Paper Fig. 5: varying N from 1K to 256K changes the relative gains
	// little; average savings exceed 22% in the default scenario.
	var reductions []float64
	for _, n := range []float64{1024, 4096, 16384, 65536, 262144} {
		p := DefaultTwoPartitionParams()
		p.N = n
		one, err := p.CostOneKeyTree()
		if err != nil {
			t.Fatalf("N=%v: %v", n, err)
		}
		qt, _ := p.CostQT()
		tt, _ := p.CostTT()
		best := math.Max((one-qt)/one, (one-tt)/one)
		reductions = append(reductions, best)
		if best < 0.15 {
			t.Errorf("N=%v: best reduction only %.1f%%", n, 100*best)
		}
	}
	mean := 0.0
	for _, r := range reductions {
		mean += r
	}
	mean /= float64(len(reductions))
	if mean < 0.20 {
		t.Errorf("mean reduction across sizes %.1f%%, paper shows >22%%", 100*mean)
	}
	// Weak dependence on N: spread bounded.
	minR, maxR := reductions[0], reductions[0]
	for _, r := range reductions {
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	if maxR-minR > 0.15 {
		t.Errorf("reduction varies too much with N: [%v, %v]", minR, maxR)
	}
}

func TestSteadyStateFlowConservationQuick(t *testing.T) {
	f := func(aRaw, kRaw, msRaw, mlRaw uint16) bool {
		p := TwoPartitionParams{
			Tp:     60,
			N:      65536,
			Degree: 4,
			K:      int(kRaw % 30),
			Ms:     float64(msRaw%1000) + 10,
			Ml:     float64(mlRaw)*2 + 100,
			Alpha:  float64(aRaw%101) / 100,
		}
		s, err := p.SteadyState()
		if err != nil {
			return false
		}
		return almostEqual(s.Ncs+s.Ncl, p.N, 1e-6) &&
			almostEqual(s.Ns+s.Nl, p.N, 1e-6) &&
			almostEqual(s.Ls+s.Lm, s.J, 1e-6) &&
			s.Ns >= 0 && s.Nl >= 0 && s.Ls >= -1e-9 && s.Lm >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionHelper(t *testing.T) {
	p := DefaultTwoPartitionParams()
	one, _ := p.CostOneKeyTree()
	r, err := p.Reduction(one / 2)
	if err != nil {
		t.Fatalf("Reduction: %v", err)
	}
	if !almostEqual(r, 0.5, 1e-9) {
		t.Fatalf("Reduction=%v, want 0.5", r)
	}
}
