package analytic

import (
	"fmt"
	"math"
)

// LossShare describes one homogeneous slice of a key tree's receiver
// population: a Fraction of the members (0..1) all experiencing packet-loss
// probability P.
type LossShare struct {
	Fraction float64
	P        float64
}

// NormalizeMix drops zero-fraction shares and verifies fractions sum to 1.
func NormalizeMix(mix []LossShare) ([]LossShare, error) {
	out := make([]LossShare, 0, len(mix))
	sum := 0.0
	for _, s := range mix {
		if s.Fraction < 0 || s.P < 0 || s.P >= 1 {
			return nil, fmt.Errorf("%w: loss share fraction=%v p=%v", ErrBadParams, s.Fraction, s.P)
		}
		sum += s.Fraction
		if s.Fraction > 0 {
			out = append(out, s)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: loss shares sum to %v, want 1", ErrBadParams, sum)
	}
	return out, nil
}

// ExpectedTransmissions is equation (14) extended to a heterogeneous
// receiver set: the expected number of times one key must be multicast so
// that all r interested receivers obtain it, when the receivers split into
// the given loss shares. With independent losses,
//
//	P[M ≤ m] = Π_c (1 − p_c^m)^(f_c·r),
//	E[M]     = Σ_{m≥1} (1 − Π_c (1 − p_c^{m−1})^(f_c·r)).
//
// r may be fractional (average receivers per key at a tree level). The sum
// is truncated once the tail term drops below 1e-12.
func ExpectedTransmissions(r float64, mix []LossShare) float64 {
	if r <= 0 {
		return 0
	}
	// E[M] = Σ_{m≥1} P[M ≥ m] = Σ_{m≥1} (1 − P[M ≤ m−1]). The key is always
	// sent at least once (P[M ≤ 0] = 0), so the m = 1 term is exactly 1.
	e := 1.0
	for m := 2; m <= 100000; m++ {
		cdf := 1.0 // P[M ≤ m−1]
		for _, c := range mix {
			if c.P <= 0 || c.Fraction <= 0 {
				continue // lossless receivers are satisfied by transmission 1
			}
			cdf *= math.Pow(1-math.Pow(c.P, float64(m-1)), c.Fraction*r)
		}
		term := 1 - cdf
		e += term
		if term < 1e-12 {
			break
		}
	}
	return e
}

// WKABKRTree models one key tree under the WKA-BKR transport: n members
// with the given loss mix, l of whom depart in the batch.
type WKABKRTree struct {
	N      float64
	L      float64
	Degree int
	Mix    []LossShare
}

// RekeyBandwidth is equation (15): the expected number of encrypted keys
// the server transmits (including proactive replicas and retransmissions)
// for one batched rekey of this tree until every receiver has its keys.
// Each updated key at level l yields d child wraps, each needed by the
// R(l) = S_l/d members under that child:
//
//	E[V] = Σ_l d · U(l) · E[M(l)],  U(l) = d^l · P_l.
//
// Members are assumed uniformly spread over the tree, so each wrap sees the
// tree's overall loss mix.
func (t WKABKRTree) RekeyBandwidth() (float64, error) {
	mix, err := NormalizeMix(t.Mix)
	if err != nil {
		return 0, err
	}
	if t.N <= 1 || t.L <= 0 {
		return 0, nil
	}
	if t.Degree < 2 {
		return 0, fmt.Errorf("%w: degree=%d", ErrBadParams, t.Degree)
	}
	l := math.Min(t.L, t.N)
	total := 0.0
	for _, lv := range TreeLevels(t.N, t.Degree) {
		u := lv.Keys * lv.PUpdate(t.N, l)           // expected updated keys at this level
		receivers := lv.Subtree / float64(t.Degree) // members under one child wrap
		total += float64(t.Degree) * u * ExpectedTransmissions(receivers, mix)
	}
	return total, nil
}

// MultiTreeParams models a key server maintaining several key trees as
// subtrees beneath the shared group key (Section 4.2). Departures are
// apportioned to trees in proportion to tree size (Section 4.3).
type MultiTreeParams struct {
	Trees []WKABKRTree
	// IncludeGroupKey adds the cost of re-distributing the shared group
	// key: one wrap per tree (encrypted under that tree's root), each
	// needed by the whole tree. The paper's single-tree model already
	// counts its root at level 0, so comparisons across scheme shapes
	// should keep this enabled.
	IncludeGroupKey bool
}

// RekeyBandwidth sums per-tree rekey bandwidth plus, optionally, the group
// key distribution cost.
func (mp MultiTreeParams) RekeyBandwidth() (float64, error) {
	total := 0.0
	anyDeparture := false
	for _, t := range mp.Trees {
		v, err := t.RekeyBandwidth()
		if err != nil {
			return 0, err
		}
		total += v
		if t.L > 0 {
			anyDeparture = true
		}
	}
	if mp.IncludeGroupKey && anyDeparture && len(mp.Trees) > 1 {
		for _, t := range mp.Trees {
			mix, err := NormalizeMix(t.Mix)
			if err != nil {
				return 0, err
			}
			total += ExpectedTransmissions(t.N, mix)
		}
	}
	return total, nil
}

// LossScenarioParams sets up the Section 4.3 experiments: N receivers, a
// fraction alpha experiencing high loss Ph and the rest low loss Pl, and L
// departures per batch.
type LossScenarioParams struct {
	N      float64
	L      float64
	Degree int
	Alpha  float64 // fraction of high-loss receivers
	Ph     float64 // high loss rate
	Pl     float64 // low loss rate
}

// DefaultLossScenario returns the paper's Section 4.3 defaults:
// N = 65536, L = 256, d = 4, ph = 20%, pl = 2%.
func DefaultLossScenario() LossScenarioParams {
	return LossScenarioParams{N: 65536, L: 256, Degree: 4, Ph: 0.20, Pl: 0.02}
}

func (p LossScenarioParams) mixedShare(alpha float64) []LossShare {
	return []LossShare{
		{Fraction: alpha, P: p.Ph},
		{Fraction: 1 - alpha, P: p.Pl},
	}
}

// CostOneKeyTree evaluates the unoptimized scheme: a single tree holding
// the full mixed population.
func (p LossScenarioParams) CostOneKeyTree() (float64, error) {
	t := WKABKRTree{N: p.N, L: p.L, Degree: p.Degree, Mix: p.mixedShare(p.Alpha)}
	return t.RekeyBandwidth()
}

// CostTwoRandomTrees evaluates the control scheme of Fig. 6: two key trees
// of N/2 members each, with members assigned at random, so both trees carry
// the same loss mix as the whole group.
func (p LossScenarioParams) CostTwoRandomTrees() (float64, error) {
	half := WKABKRTree{N: p.N / 2, L: p.L / 2, Degree: p.Degree, Mix: p.mixedShare(p.Alpha)}
	mp := MultiTreeParams{Trees: []WKABKRTree{half, half}, IncludeGroupKey: true}
	return mp.RekeyBandwidth()
}

// CostLossHomogenized evaluates the proposed scheme: one tree with all the
// high-loss members, another with all the low-loss members. Departures are
// proportional to tree size.
func (p LossScenarioParams) CostLossHomogenized() (float64, error) {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		// Homogeneous population: the scheme degenerates to one key tree.
		return p.CostOneKeyTree()
	}
	high := WKABKRTree{
		N: p.Alpha * p.N, L: p.Alpha * p.L, Degree: p.Degree,
		Mix: []LossShare{{Fraction: 1, P: p.Ph}},
	}
	low := WKABKRTree{
		N: (1 - p.Alpha) * p.N, L: (1 - p.Alpha) * p.L, Degree: p.Degree,
		Mix: []LossShare{{Fraction: 1, P: p.Pl}},
	}
	mp := MultiTreeParams{Trees: []WKABKRTree{high, low}, IncludeGroupKey: true}
	return mp.RekeyBandwidth()
}

// CostMisplaced evaluates the Fig. 7 scenario: tree sizes stay as in the
// correctly partitioned scheme, but a fraction beta of the high-loss tree's
// members are actually low-loss and the same head count of the low-loss
// tree's members are actually high-loss.
func (p LossScenarioParams) CostMisplaced(beta float64) (float64, error) {
	if beta < 0 || beta > 1 {
		return 0, fmt.Errorf("%w: beta=%v", ErrBadParams, beta)
	}
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return p.CostOneKeyTree()
	}
	swapped := beta * p.Alpha * p.N // members moved in each direction
	highTree := WKABKRTree{
		N: p.Alpha * p.N, L: p.Alpha * p.L, Degree: p.Degree,
		Mix: []LossShare{
			{Fraction: 1 - beta, P: p.Ph},
			{Fraction: beta, P: p.Pl},
		},
	}
	lowN := (1 - p.Alpha) * p.N
	lowTree := WKABKRTree{
		N: lowN, L: (1 - p.Alpha) * p.L, Degree: p.Degree,
		Mix: []LossShare{
			{Fraction: swapped / lowN, P: p.Ph},
			{Fraction: 1 - swapped/lowN, P: p.Pl},
		},
	}
	mp := MultiTreeParams{Trees: []WKABKRTree{highTree, lowTree}, IncludeGroupKey: true}
	return mp.RekeyBandwidth()
}
