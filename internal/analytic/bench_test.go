package analytic

import "testing"

func BenchmarkBatchRekeyCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BatchRekeyCost(65536, 1684, 4)
	}
}

func BenchmarkTwoPartitionCosts(b *testing.B) {
	p := DefaultTwoPartitionParams()
	for i := 0; i < b.N; i++ {
		if _, err := p.CostTT(); err != nil {
			b.Fatal(err)
		}
		if _, err := p.CostQT(); err != nil {
			b.Fatal(err)
		}
		if _, err := p.CostPT(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWKABKRBandwidth(b *testing.B) {
	p := DefaultLossScenario()
	p.Alpha = 0.2
	for i := 0; i < b.N; i++ {
		if _, err := p.CostOneKeyTree(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpectedTransmissions(b *testing.B) {
	mix := []LossShare{{Fraction: 0.8, P: 0.02}, {Fraction: 0.2, P: 0.2}}
	for i := 0; i < b.N; i++ {
		_ = ExpectedTransmissions(16384, mix)
	}
}

func BenchmarkFECBlockModel(b *testing.B) {
	f := DefaultFECParams()
	mix := []LossShare{{Fraction: 0.9, P: 0.02}, {Fraction: 0.1, P: 0.2}}
	for i := 0; i < b.N; i++ {
		if _, err := f.ExpectedPacketsPerBlock(65536, mix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiClassBestPartition(b *testing.B) {
	s := DefaultMultiClassScenario()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.BestPartition(2); err != nil {
			b.Fatal(err)
		}
	}
}
