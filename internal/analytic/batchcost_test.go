package analytic

import (
	"math"
	"testing"
)

func TestTreeLevelsFullTree(t *testing.T) {
	// N = 4^4 = 256: levels i have 4^i keys and 4^{4-i} leaves per key.
	levels := TreeLevels(256, 4)
	if len(levels) != 4 {
		t.Fatalf("got %d levels, want 4", len(levels))
	}
	for i, lv := range levels {
		wantKeys := math.Pow(4, float64(i))
		wantSub := math.Pow(4, float64(4-i))
		if !almostEqual(lv.Keys, wantKeys, 1e-9) {
			t.Errorf("level %d: keys=%v, want %v", i, lv.Keys, wantKeys)
		}
		if !almostEqual(lv.Subtree, wantSub, 1e-9) {
			t.Errorf("level %d: subtree=%v, want %v", i, lv.Subtree, wantSub)
		}
	}
}

func TestTreeLevelsLeafConservation(t *testing.T) {
	// At every level the keys' subtrees plus leaves attached above must
	// account for all n members; in particular Keys·Subtree ≤ n and the
	// deepest level satisfies (slots − keys) + keys·d = n.
	for _, n := range []float64{2, 3, 5, 16, 17, 100, 256, 1000, 65536, 7867.2} {
		levels := TreeLevels(n, 4)
		if len(levels) == 0 {
			t.Fatalf("n=%v: no levels", n)
		}
		deep := levels[len(levels)-1]
		slots := math.Pow(4, float64(deep.Index))
		leavesAccounted := (slots - deep.Keys) + deep.Keys*4
		if !almostEqual(leavesAccounted, n, 1e-6) {
			t.Errorf("n=%v: deepest level accounts for %v leaves", n, leavesAccounted)
		}
		for _, lv := range levels {
			if lv.Keys*lv.Subtree > n*(1+1e-9) {
				t.Errorf("n=%v level %d: keys×subtree=%v exceeds n", n, lv.Index, lv.Keys*lv.Subtree)
			}
		}
	}
}

func TestTreeLevelsContinuityAcrossPower(t *testing.T) {
	// Cost must be continuous as n crosses a power of d: the discontinuity
	// at the boundary caused a spurious dip in the Fig. 6 reproduction.
	d := 4
	l := 64.0
	below := BatchRekeyCost(16384-1, l, d)
	at := BatchRekeyCost(16384, l, d)
	above := BatchRekeyCost(16384+1, l, d)
	if math.Abs(at-below) > 2 || math.Abs(above-at) > 2 {
		t.Fatalf("cost discontinuous across 4^7: below=%v at=%v above=%v", below, at, above)
	}
}

func TestBatchRekeyCostSingleDepartureFullTree(t *testing.T) {
	// For one departure from a full tree, P_i = S_i/N and the sum
	// telescopes to exactly d·h.
	tests := []struct {
		d, h int
	}{
		{2, 4}, {2, 8}, {4, 4}, {4, 8}, {8, 3}, {16, 2},
	}
	for _, tt := range tests {
		n := math.Pow(float64(tt.d), float64(tt.h))
		got := BatchRekeyCost(n, 1, tt.d)
		want := float64(tt.d * tt.h)
		// lgamma-based combinatorials carry ~1e-7 relative error at N=65536.
		if !almostEqual(got, want, 1e-5) {
			t.Errorf("Ne(%v, 1, %d) = %v, want d·h = %v", n, tt.d, got, want)
		}
	}
}

func TestBatchRekeyCostAllDepart(t *testing.T) {
	// When every member departs, every interior key is updated: cost is
	// d × (number of interior keys) = d·(d^h − 1)/(d − 1).
	d, h := 4, 4
	n := math.Pow(4, 4)
	got := BatchRekeyCost(n, n, d)
	want := 4.0 * (math.Pow(4, float64(h)) - 1) / 3.0
	if !almostEqual(got, want, 1e-9) {
		t.Fatalf("Ne(N, N) = %v, want %v", got, want)
	}
}

func TestBatchRekeyCostDegenerate(t *testing.T) {
	if got := BatchRekeyCost(0, 5, 4); got != 0 {
		t.Errorf("empty tree cost %v, want 0", got)
	}
	if got := BatchRekeyCost(100, 0, 4); got != 0 {
		t.Errorf("zero departures cost %v, want 0", got)
	}
	if got := BatchRekeyCost(1, 1, 4); got != 0 {
		t.Errorf("single-member tree cost %v, want 0 (no interior keys)", got)
	}
	// l > n clamps rather than exploding.
	a := BatchRekeyCost(64, 64, 4)
	b := BatchRekeyCost(64, 1000, 4)
	if !almostEqual(a, b, 1e-9) {
		t.Errorf("l>n not clamped: %v vs %v", a, b)
	}
}

func TestBatchRekeyCostMonotoneInL(t *testing.T) {
	prev := -1.0
	for l := 1.0; l <= 256; l *= 2 {
		c := BatchRekeyCost(65536, l, 4)
		if c <= prev {
			t.Fatalf("cost not increasing in L: L=%v gives %v (prev %v)", l, c, prev)
		}
		prev = c
	}
}

func TestBatchRekeyCostSubadditiveBatching(t *testing.T) {
	// Batching L departures must cost no more than L separate rekeys
	// (Section 2.1.1: path overlap is the whole point of batching).
	for _, l := range []float64{2, 16, 128, 1024} {
		batched := BatchRekeyCost(65536, l, 4)
		individual := IndividualRekeyCost(65536, l, 4)
		if batched > individual {
			t.Errorf("L=%v: batched %v > individual %v", l, batched, individual)
		}
	}
}

func TestBatchRekeyCostPaperDefaultMagnitude(t *testing.T) {
	// The one-keytree line of Fig. 3: about 1.6×10^4 keys per period for
	// N=65536, d=4, J≈1684.
	got := BatchRekeyCost(65536, 1683.8, 4)
	if got < 15000 || got > 18000 {
		t.Fatalf("one-keytree cost %v, paper's Fig. 3 shows ≈1.6×10^4", got)
	}
}

func TestNaiveUnicastCost(t *testing.T) {
	if got := NaiveUnicastCost(100, 1); got != 99 {
		t.Errorf("naive cost %v, want 99", got)
	}
	if got := NaiveUnicastCost(100, 3); got != 297 {
		t.Errorf("naive cost %v, want 297", got)
	}
	if got := NaiveUnicastCost(1, 1); got != 0 {
		t.Errorf("naive cost for singleton %v, want 0", got)
	}
	// The whole motivation: the tree is exponentially cheaper.
	if tree := BatchRekeyCost(65536, 1, 4); tree >= NaiveUnicastCost(65536, 1) {
		t.Error("LKH not cheaper than naive unicast")
	}
}

func TestWorstBestCaseBracketAverage(t *testing.T) {
	// For every (N, L) the expected cost must sit between the clustered
	// best case and the adversarial worst case.
	for _, tc := range []struct {
		n, l float64
	}{
		{65536, 1}, {65536, 16}, {65536, 256}, {65536, 4096},
		{1024, 10}, {700, 20},
	} {
		avg := BatchRekeyCost(tc.n, tc.l, 4)
		worst := WorstCaseBatchRekeyCost(tc.n, tc.l, 4)
		best := BestCaseBatchRekeyCost(tc.n, tc.l, 4)
		// The expectation uses lgamma-based combinatorials (~1e-7 relative
		// error), so allow a hair of slack at the coincidence points.
		slack := 1e-4 * avg
		if best > avg+slack || avg > worst+slack {
			t.Errorf("N=%v L=%v: best %v ≤ avg %v ≤ worst %v violated", tc.n, tc.l, best, avg, worst)
		}
	}
	// Single departure: all three coincide (d·h).
	a, w, b := BatchRekeyCost(4096, 1, 4), WorstCaseBatchRekeyCost(4096, 1, 4), BestCaseBatchRekeyCost(4096, 1, 4)
	if !almostEqual(a, w, 1e-5) || !almostEqual(a, b, 1e-5) {
		t.Errorf("L=1: avg=%v worst=%v best=%v should coincide", a, w, b)
	}
}

func TestWorstCaseSaturates(t *testing.T) {
	// Once l ≥ d^{h−1} every interior key updates: worst case equals the
	// all-depart cost.
	n := 4096.0
	all := BatchRekeyCost(n, n, 4)
	if got := WorstCaseBatchRekeyCost(n, 1024, 4); !almostEqual(got, all, 1e-9) {
		t.Errorf("saturated worst case %v, want %v", got, all)
	}
}

func TestUpdatedKeysPerLevelConsistent(t *testing.T) {
	n, l, d := 65536.0, 256.0, 4
	per := UpdatedKeysPerLevel(n, l, d)
	sum := 0.0
	for _, u := range per {
		sum += float64(d) * u
	}
	if !almostEqual(sum, BatchRekeyCost(n, l, d), 1e-9) {
		t.Fatalf("Σ d·U(l) = %v ≠ Ne = %v", sum, BatchRekeyCost(n, l, d))
	}
	// The root updates almost surely with 256 departures.
	if per[0] < 0.999 {
		t.Errorf("root update expectation %v, want ≈1", per[0])
	}
}
