package analytic

import (
	"fmt"
	"math"
)

// This file models the probabilistic LKH organization of Selcuk et al.
// (Section 2.3): instead of a balanced tree, members that are more likely
// to be revoked sit closer to the root, "in a spirit similar to data
// compression algorithms such as Huffman and Shannon-Fano coding". The
// PT-scheme borrows its known-class assumption; this model quantifies how
// much the depth optimization itself can save under individual (per-event)
// rekeying, where a member at depth h costs about d·h keys to revoke.

// LeaveClass is one slice of the membership with a common per-period
// departure probability.
type LeaveClass struct {
	Fraction float64 // share of the group, summing to 1 across classes
	PLeave   float64 // probability the member departs in one rekey period
}

// ProbabilisticLKH describes a group with known per-class departure
// probabilities.
type ProbabilisticLKH struct {
	N       float64
	Degree  int
	Classes []LeaveClass
}

// Validate checks the inputs.
func (p ProbabilisticLKH) Validate() error {
	if p.N < 2 || p.Degree < 2 {
		return fmt.Errorf("%w: n=%v degree=%d", ErrBadParams, p.N, p.Degree)
	}
	sum := 0.0
	for _, c := range p.Classes {
		if c.Fraction < 0 || c.PLeave < 0 || c.PLeave > 1 {
			return fmt.Errorf("%w: class %+v", ErrBadParams, c)
		}
		sum += c.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: class fractions sum to %v", ErrBadParams, sum)
	}
	return nil
}

// BalancedCost is the per-period expected revocation cost of the balanced
// tree: every member sits at depth log_d N, and a departure costs d·depth
// keys (individual rekeying, as in Selcuk et al.'s setting).
func (p ProbabilisticLKH) BalancedCost() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	depth := math.Ceil(math.Log(p.N) / math.Log(float64(p.Degree)))
	cost := 0.0
	for _, c := range p.Classes {
		cost += c.Fraction * p.N * c.PLeave * float64(p.Degree) * depth
	}
	return cost, nil
}

// OptimalDepths returns the revocation-probability-weighted depths that
// minimize Σ_i N_i·p_i·depth_i subject to the Kraft inequality
// Σ_i N_i·d^(−depth_i) ≤ 1 — the Shannon-code solution
//
//	depth_i = log_d( W / w_i ),  w_i = p_i / Σ_j f_j·N·p_j per member,
//
// clamped below at the information-theoretic floor for the class size (a
// class of N_i members can never sit shallower than log_d N_i if it fills
// its subtree).
func (p ProbabilisticLKH) OptimalDepths() ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	df := float64(p.Degree)
	// Total weight W = Σ members' p; per-member weight w_i = p_i.
	totalW := 0.0
	for _, c := range p.Classes {
		totalW += c.Fraction * p.N * c.PLeave
	}
	depths := make([]float64, len(p.Classes))
	for i, c := range p.Classes {
		if c.PLeave <= 0 || totalW <= 0 {
			// Never-leaving members can sit arbitrarily deep; cap at the
			// depth needed to pack them all.
			depths[i] = math.Log(p.N) / math.Log(df)
			continue
		}
		ideal := math.Log(totalW/c.PLeave) / math.Log(df)
		floor := math.Log(math.Max(c.Fraction*p.N, 1)) / math.Log(df)
		depths[i] = math.Max(ideal, floor)
	}
	return depths, nil
}

// OptimalCost is the per-period expected revocation cost with the
// probability-ordered organization.
func (p ProbabilisticLKH) OptimalCost() (float64, error) {
	depths, err := p.OptimalDepths()
	if err != nil {
		return 0, err
	}
	cost := 0.0
	for i, c := range p.Classes {
		cost += c.Fraction * p.N * c.PLeave * float64(p.Degree) * depths[i]
	}
	return cost, nil
}

// Gain returns the relative saving of the probabilistic organization over
// the balanced tree.
func (p ProbabilisticLKH) Gain() (float64, error) {
	bal, err := p.BalancedCost()
	if err != nil {
		return 0, err
	}
	opt, err := p.OptimalCost()
	if err != nil {
		return 0, err
	}
	if bal <= 0 {
		return 0, nil
	}
	return (bal - opt) / bal, nil
}
