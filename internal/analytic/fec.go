package analytic

import (
	"fmt"
	"math"
)

// FECParams configures the proactive-FEC rekey transport model (Yang et
// al., SIGCOMM 2001, as referenced in Sections 2.2 and 4.4): encrypted keys
// are packed into packets, packets are grouped into blocks of K source
// packets, and each block is transmitted with proactive Reed-Solomon parity
// so that any K of the packets sent reconstruct the block.
type FECParams struct {
	// K is the number of source packets per FEC block.
	K int
	// Rho is the proactivity factor: the server initially multicasts
	// ceil(Rho·K) packets per block (K source + parity).
	Rho float64
	// KeysPerPacket is how many encrypted keys fit in one packet.
	KeysPerPacket int
	// MaxRounds bounds the NACK/retransmission rounds evaluated.
	MaxRounds int
	// Epsilon terminates the round recursion once the probability that any
	// receiver still misses the block drops below it.
	Epsilon float64
}

// DefaultFECParams mirrors the proactive-FEC configuration used in the
// rekey-transport literature: blocks of 8 source packets, 10% proactive
// parity, 25 keys per packet.
func DefaultFECParams() FECParams {
	return FECParams{K: 8, Rho: 1.1, KeysPerPacket: 25, MaxRounds: 32, Epsilon: 1e-9}
}

// Validate checks parameter sanity.
func (f FECParams) Validate() error {
	switch {
	case f.K < 1 || f.K > 256:
		return fmt.Errorf("%w: FEC block size K=%d", ErrBadParams, f.K)
	case f.Rho < 1:
		return fmt.Errorf("%w: proactivity rho=%v < 1", ErrBadParams, f.Rho)
	case f.KeysPerPacket < 1:
		return fmt.Errorf("%w: keysPerPacket=%d", ErrBadParams, f.KeysPerPacket)
	case f.MaxRounds < 1:
		return fmt.Errorf("%w: maxRounds=%d", ErrBadParams, f.MaxRounds)
	case f.Epsilon <= 0:
		return fmt.Errorf("%w: epsilon=%v", ErrBadParams, f.Epsilon)
	}
	return nil
}

// ExpectedPacketsPerBlock returns the expected number of packets the server
// multicasts for one FEC block until all receivers can reconstruct it.
//
// The model tracks, per loss class, the distribution of a receiver's packet
// deficit (how many more packets it needs to reach K). Each round the
// server transmits the expected maximum deficit over all receivers — the
// batched-NACK policy of proactive-FEC rekeying — and deficits contract by
// an independent Binomial number of successful receptions. The expectation
// is exact per class given the round sizes; round sizes use the standard
// order-statistics bound over the (fractional) receiver counts.
//
// Because the per-block parity is sized by the worst receiver, a small
// fraction of high-loss members inflates every round for everyone — the
// sensitivity to heterogeneity that the loss-homogenized organization
// removes (Section 4.4).
func (f FECParams) ExpectedPacketsPerBlock(receivers float64, mix []LossShare) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	m, err := NormalizeMix(mix)
	if err != nil {
		return 0, err
	}
	if receivers <= 0 {
		return 0, nil
	}

	initial := int(math.Ceil(f.Rho * float64(f.K)))
	total := float64(initial)

	// deficit[c][d] = probability a class-c receiver still needs d packets.
	deficit := make([][]float64, len(m))
	for ci, c := range m {
		dist := make([]float64, f.K+1)
		// After the initial transmission of `initial` packets the receiver
		// holds X ~ Binomial(initial, 1-p); deficit = max(0, K - X).
		for x := 0; x <= initial; x++ {
			px := binomPMF(initial, 1-c.P, x)
			d := f.K - x
			if d < 0 {
				d = 0
			}
			dist[d] += px
		}
		deficit[ci] = dist
	}

	for round := 0; round < f.MaxRounds; round++ {
		// Probability any receiver is still unfinished.
		pAll := 1.0
		for ci, c := range m {
			pAll *= math.Pow(deficit[ci][0], c.Fraction*receivers)
		}
		if 1-pAll < f.Epsilon {
			break
		}
		// Expected maximum deficit over all receivers:
		// E[max] = Σ_{j≥0} (1 − P[max ≤ j]), P[max ≤ j] = Π_c P[D_c ≤ j]^{n_c}.
		eMax := 0.0
		for j := 0; j < f.K; j++ {
			pLe := 1.0
			for ci, c := range m {
				cdf := 0.0
				for d := 0; d <= j; d++ {
					cdf += deficit[ci][d]
				}
				if cdf <= 0 {
					pLe = 0
					break
				}
				pLe *= math.Pow(cdf, c.Fraction*receivers)
			}
			eMax += 1 - pLe
		}
		send := int(math.Ceil(eMax - 1e-9))
		if send < 1 {
			send = 1
		}
		total += eMax

		// Contract deficits: D' = max(0, D − Binomial(send, 1−p)).
		for ci, c := range m {
			next := make([]float64, f.K+1)
			for d, pd := range deficit[ci] {
				if pd == 0 {
					continue
				}
				if d == 0 {
					next[0] += pd
					continue
				}
				for x := 0; x <= send; x++ {
					px := binomPMF(send, 1-c.P, x)
					nd := d - x
					if nd < 0 {
						nd = 0
					}
					next[nd] += pd * px
				}
			}
			deficit[ci] = next
		}
	}
	return total, nil
}

// FECRekeyBandwidth returns the expected number of encrypted-key slots the
// server transmits to deliver `keys` encrypted keys to `receivers` members
// with the given loss mix, under proactive-FEC transport. Packets are
// converted back to key slots (KeysPerPacket each) so results are
// comparable with the WKA-BKR model's key counts.
func (f FECParams) FECRekeyBandwidth(keys, receivers float64, mix []LossShare) (float64, error) {
	if keys <= 0 || receivers <= 0 {
		return 0, nil
	}
	perBlock, err := f.ExpectedPacketsPerBlock(receivers, mix)
	if err != nil {
		return 0, err
	}
	packets := math.Ceil(keys / float64(f.KeysPerPacket))
	blocks := packets / float64(f.K)
	return blocks * perBlock * float64(f.KeysPerPacket), nil
}

// FECCostOneKeyTree evaluates the Section 4.4 scenario for a single mixed
// key tree under proactive-FEC transport.
func (p LossScenarioParams) FECCostOneKeyTree(f FECParams) (float64, error) {
	keys := BatchRekeyCost(p.N, p.L, p.Degree)
	return f.FECRekeyBandwidth(keys, p.N, p.mixedShare(p.Alpha))
}

// FECCostLossHomogenized evaluates the loss-homogenized organization under
// proactive-FEC transport: each loss class gets its own key tree, so block
// parity for the low-loss population is no longer driven by the high-loss
// tail.
func (p LossScenarioParams) FECCostLossHomogenized(f FECParams) (float64, error) {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return p.FECCostOneKeyTree(f)
	}
	highKeys := BatchRekeyCost(p.Alpha*p.N, p.Alpha*p.L, p.Degree)
	lowKeys := BatchRekeyCost((1-p.Alpha)*p.N, (1-p.Alpha)*p.L, p.Degree)
	high, err := f.FECRekeyBandwidth(highKeys, p.Alpha*p.N, []LossShare{{Fraction: 1, P: p.Ph}})
	if err != nil {
		return 0, err
	}
	low, err := f.FECRekeyBandwidth(lowKeys, (1-p.Alpha)*p.N, []LossShare{{Fraction: 1, P: p.Pl}})
	if err != nil {
		return 0, err
	}
	// Group-key distribution: one wrap per tree, delivered in the first
	// packet of each tree's stream; negligible next to the block costs but
	// included for parity with the WKA-BKR multi-tree accounting.
	return high + low + 2, nil
}
