package analytic

import (
	"errors"
	"fmt"
	"math"
)

// Model validation errors.
var (
	ErrBadParams = errors.New("analytic: invalid model parameters")
)

// TwoPartitionParams parameterizes the two-class open queueing model of
// Section 3.3.1 (see the paper's Fig. 2 and Table 1). Durations are in
// seconds. Members arrive at rate J per rekey period Tp; a fraction Alpha
// belong to the short-duration class Cs (exponential mean Ms) and the rest
// to the long-duration class Cl (exponential mean Ml). Members joining the
// S-partition migrate to the L-partition after surviving the S-period
// Ts = K·Tp.
type TwoPartitionParams struct {
	Tp     float64 // rekey period (seconds)
	N      float64 // steady-state group size
	Degree int     // key tree fan-out d
	K      int     // S-period in rekey periods: Ts = K·Tp
	Ms     float64 // mean membership duration of class Cs (seconds)
	Ml     float64 // mean membership duration of class Cl (seconds)
	Alpha  float64 // fraction of joins from class Cs
}

// DefaultTwoPartitionParams returns the paper's Table 1 defaults:
// Tp = 60 s, N = 65536, d = 4, K = 10, Ms = 3 min, Ml = 3 h, α = 0.8.
func DefaultTwoPartitionParams() TwoPartitionParams {
	return TwoPartitionParams{
		Tp:     60,
		N:      65536,
		Degree: 4,
		K:      10,
		Ms:     3 * 60,
		Ml:     3 * 60 * 60,
		Alpha:  0.8,
	}
}

// Validate checks parameter sanity.
func (p TwoPartitionParams) Validate() error {
	switch {
	case p.Tp <= 0:
		return fmt.Errorf("%w: Tp=%v", ErrBadParams, p.Tp)
	case p.N < 2:
		return fmt.Errorf("%w: N=%v", ErrBadParams, p.N)
	case p.Degree < 2:
		return fmt.Errorf("%w: degree=%d", ErrBadParams, p.Degree)
	case p.K < 0:
		return fmt.Errorf("%w: K=%d", ErrBadParams, p.K)
	case p.Ms <= 0 || p.Ml <= 0:
		return fmt.Errorf("%w: Ms=%v Ml=%v", ErrBadParams, p.Ms, p.Ml)
	case p.Alpha < 0 || p.Alpha > 1:
		return fmt.Errorf("%w: alpha=%v", ErrBadParams, p.Alpha)
	}
	return nil
}

// DepartProb is equation (2): the probability that a member with
// exponentially distributed duration of mean m departs within time t.
func DepartProb(t, m float64) float64 {
	if t <= 0 {
		return 0
	}
	return 1 - math.Exp(-t/m)
}

// TwoPartitionState holds the steady-state quantities of the model,
// equations (1)–(7). All values are per rekey period Tp unless noted.
type TwoPartitionState struct {
	J   float64 // join (and departure) rate per period
	Ncs float64 // class-Cs members in the group
	Ncl float64 // class-Cl members in the group
	Lcs float64 // class-Cs departures per period (= α·J)
	Lcl float64 // class-Cl departures per period (= (1−α)·J)
	Ns  float64 // members in the S-partition (equation 6)
	Nl  float64 // members in the L-partition (N − Ns)
	Lm  float64 // migrations S→L per period (equation 7)
	Ls  float64 // departures from the S-partition per period (J − Lm)
	Ll  float64 // departures from the L-partition per period (= Lm in steady state)
}

// SteadyState solves the model for the given parameters.
//
// From equations (3)–(5): Lcs = Ncs·Pr(Tp,Ms) = α·J and
// Lcl = Ncl·Pr(Tp,Ml) = (1−α)·J, with Ncs + Ncl = N, so
//
//	J = N / ( α/Pr(Tp,Ms) + (1−α)/Pr(Tp,Ml) ).
func (p TwoPartitionParams) SteadyState() (TwoPartitionState, error) {
	if err := p.Validate(); err != nil {
		return TwoPartitionState{}, err
	}
	prS := DepartProb(p.Tp, p.Ms)
	prL := DepartProb(p.Tp, p.Ml)

	var s TwoPartitionState
	s.J = p.N / (p.Alpha/prS + (1-p.Alpha)/prL)
	s.Lcs = p.Alpha * s.J
	s.Lcl = (1 - p.Alpha) * s.J
	s.Ncs = s.Lcs / prS
	s.Ncl = s.Lcl / prL

	// Equation (6): members resident in the S-partition have survived
	// 0, Tp, …, (K−1)·Tp so far.
	for i := 0; i < p.K; i++ {
		t := float64(i) * p.Tp
		s.Ns += p.Alpha*s.J*math.Exp(-t/p.Ms) + (1-p.Alpha)*s.J*math.Exp(-t/p.Ml)
	}
	s.Nl = p.N - s.Ns

	// Equation (7): only members that survived the full S-period migrate.
	ts := float64(p.K) * p.Tp
	s.Lm = p.Alpha*s.J*math.Exp(-ts/p.Ms) + (1-p.Alpha)*s.J*math.Exp(-ts/p.Ml)
	s.Ls = s.J - s.Lm
	s.Ll = s.Lm // steady state: L-partition arrivals equal its departures
	return s, nil
}

// CostOneKeyTree is the per-period rekeying cost (number of encrypted keys)
// of the unoptimized single balanced key tree: Ne(N, J).
func (p TwoPartitionParams) CostOneKeyTree() (float64, error) {
	s, err := p.SteadyState()
	if err != nil {
		return 0, err
	}
	return BatchRekeyCost(p.N, s.J, p.Degree), nil
}

// CostQT is equation (8): the QT-scheme keeps the S-partition as a linear
// queue (rekey cost Ns: the new key is encrypted individually for every
// queue resident) and the L-partition as a balanced tree.
func (p TwoPartitionParams) CostQT() (float64, error) {
	s, err := p.SteadyState()
	if err != nil {
		return 0, err
	}
	if p.K == 0 {
		// Degenerate S-partition: the scheme falls back to one key tree.
		return BatchRekeyCost(p.N, s.J, p.Degree), nil
	}
	return s.Ns + BatchRekeyCost(s.Nl, s.Ll, p.Degree), nil
}

// CostTT is equation (9): both partitions are balanced key trees. The
// S-tree processes all J arrivals and J removals (Ls departures plus Lm
// migrations) per period; the L-tree processes Lm arrivals and Ll
// departures.
func (p TwoPartitionParams) CostTT() (float64, error) {
	s, err := p.SteadyState()
	if err != nil {
		return 0, err
	}
	if p.K == 0 {
		return BatchRekeyCost(p.N, s.J, p.Degree), nil
	}
	return BatchRekeyCost(s.Ns, s.J, p.Degree) + BatchRekeyCost(s.Nl, s.Ll, p.Degree), nil
}

// CostPT is equation (10): the oracle scheme that knows each member's class
// at join time and places it directly, avoiding all migration overhead.
func (p TwoPartitionParams) CostPT() (float64, error) {
	s, err := p.SteadyState()
	if err != nil {
		return 0, err
	}
	return BatchRekeyCost(s.Ncs, s.Lcs, p.Degree) + BatchRekeyCost(s.Ncl, s.Lcl, p.Degree), nil
}

// CostsWith evaluates all four schemes' per-period costs with an arbitrary
// batched-rekey cost function (e.g. BatchRekeyCost for the paper's model,
// BatchRekeyCostImpl for the implementation-aware variant).
func (p TwoPartitionParams) CostsWith(f func(n, l float64, d int) float64) (one, qt, tt, pt float64, err error) {
	s, err := p.SteadyState()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	one = f(p.N, s.J, p.Degree)
	if p.K == 0 {
		qt, tt = one, one
	} else {
		qt = s.Ns + f(s.Nl, s.Ll, p.Degree)
		tt = f(s.Ns, s.J, p.Degree) + f(s.Nl, s.Ll, p.Degree)
	}
	pt = f(s.Ncs, s.Lcs, p.Degree) + f(s.Ncl, s.Lcl, p.Degree)
	return one, qt, tt, pt, nil
}

// CostOneKeyTreeOFT is the per-period cost of the unoptimized scheme when
// the key tree is a one-way function tree instead of LKH.
func (p TwoPartitionParams) CostOneKeyTreeOFT() (float64, error) {
	s, err := p.SteadyState()
	if err != nil {
		return 0, err
	}
	return BatchRekeyCostOFT(p.N, s.J), nil
}

// CostTTOFT is the TT-scheme cost with both partitions built as one-way
// function trees — demonstrating the paper's Section 2.1.1 claim that the
// two-partition optimization carries over to OFT.
func (p TwoPartitionParams) CostTTOFT() (float64, error) {
	s, err := p.SteadyState()
	if err != nil {
		return 0, err
	}
	if p.K == 0 {
		return BatchRekeyCostOFT(p.N, s.J), nil
	}
	return BatchRekeyCostOFT(s.Ns, s.J) + BatchRekeyCostOFT(s.Nl, s.Ll), nil
}

// Reduction returns the relative rekeying-cost reduction of cost over the
// one-keytree baseline: (baseline − cost) / baseline. Positive means the
// optimized scheme wins.
func (p TwoPartitionParams) Reduction(cost float64) (float64, error) {
	base, err := p.CostOneKeyTree()
	if err != nil {
		return 0, err
	}
	if base == 0 {
		return 0, nil
	}
	return (base - cost) / base, nil
}
