package analytic

import (
	"errors"
	"math"
	"testing"
)

func TestFECParamsValidate(t *testing.T) {
	good := DefaultFECParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []FECParams{
		{K: 0, Rho: 1.1, KeysPerPacket: 25, MaxRounds: 8, Epsilon: 1e-9},
		{K: 8, Rho: 0.9, KeysPerPacket: 25, MaxRounds: 8, Epsilon: 1e-9},
		{K: 8, Rho: 1.1, KeysPerPacket: 0, MaxRounds: 8, Epsilon: 1e-9},
		{K: 8, Rho: 1.1, KeysPerPacket: 25, MaxRounds: 0, Epsilon: 1e-9},
		{K: 8, Rho: 1.1, KeysPerPacket: 25, MaxRounds: 8, Epsilon: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: err=%v, want ErrBadParams", i, err)
		}
	}
}

func TestFECLosslessBlockCost(t *testing.T) {
	f := DefaultFECParams()
	got, err := f.ExpectedPacketsPerBlock(65536, []LossShare{{Fraction: 1, P: 0}})
	if err != nil {
		t.Fatalf("ExpectedPacketsPerBlock: %v", err)
	}
	want := math.Ceil(f.Rho * float64(f.K))
	if !almostEqual(got, want, 1e-9) {
		t.Fatalf("lossless block cost %v, want the proactive transmission %v", got, want)
	}
}

func TestFECBlockCostMonotoneInLoss(t *testing.T) {
	f := DefaultFECParams()
	prev := 0.0
	for _, p := range []float64{0.0, 0.02, 0.1, 0.2, 0.4} {
		c, err := f.ExpectedPacketsPerBlock(10000, []LossShare{{Fraction: 1, P: p}})
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if c < prev {
			t.Fatalf("block cost not monotone in loss: p=%v gives %v (prev %v)", p, c, prev)
		}
		prev = c
	}
}

func TestFECHeterogeneitySensitivity(t *testing.T) {
	// The motivation of Section 4.4: a small high-loss fraction drags the
	// whole block toward the high-loss cost, much more than its share.
	f := DefaultFECParams()
	pureLow, _ := f.ExpectedPacketsPerBlock(65536, []LossShare{{Fraction: 1, P: 0.02}})
	pureHigh, _ := f.ExpectedPacketsPerBlock(65536, []LossShare{{Fraction: 1, P: 0.2}})
	mixed, _ := f.ExpectedPacketsPerBlock(65536, []LossShare{
		{Fraction: 0.1, P: 0.2}, {Fraction: 0.9, P: 0.02},
	})
	if mixed <= pureLow || mixed > pureHigh {
		t.Fatalf("mixed=%v not in (%v, %v]", mixed, pureLow, pureHigh)
	}
	// Far closer to the high-loss cost than the 10% share suggests.
	if (mixed-pureLow)/(pureHigh-pureLow) < 0.5 {
		t.Fatalf("mixed block cost %v not dominated by high-loss tail (low=%v high=%v)", mixed, pureLow, pureHigh)
	}
}

func TestFECLossHomogenizedGainSection44(t *testing.T) {
	// Section 4.4: "the performance gain is more significant — up to 25.7%
	// when ph=20%, pl=2% and α=0.1" (under proactive FEC).
	p := DefaultLossScenario()
	p.Alpha = 0.1
	f := DefaultFECParams()
	one, err := p.FECCostOneKeyTree(f)
	if err != nil {
		t.Fatalf("one: %v", err)
	}
	hom, err := p.FECCostLossHomogenized(f)
	if err != nil {
		t.Fatalf("homog: %v", err)
	}
	gain := (one - hom) / one
	if gain < 0.15 || gain > 0.45 {
		t.Fatalf("FEC loss-homogenized gain %.1f%%, paper reports 25.7%%", 100*gain)
	}
	// And the FEC gain exceeds the WKA-BKR gain at the same α — the
	// paper's reason for mentioning it.
	wOne, _ := p.CostOneKeyTree()
	wHom, _ := p.CostLossHomogenized()
	wGain := (wOne - wHom) / wOne
	if gain <= wGain {
		t.Fatalf("FEC gain %.1f%% should exceed WKA-BKR gain %.1f%%", 100*gain, 100*wGain)
	}
}

func TestFECHomogeneousDegenerates(t *testing.T) {
	p := DefaultLossScenario()
	p.Alpha = 0
	f := DefaultFECParams()
	one, _ := p.FECCostOneKeyTree(f)
	hom, _ := p.FECCostLossHomogenized(f)
	if !almostEqual(one, hom, 1e-9) {
		t.Fatalf("α=0: homogenized %v must equal one tree %v", hom, one)
	}
}

func TestFECBandwidthScalesWithKeys(t *testing.T) {
	f := DefaultFECParams()
	mix := []LossShare{{Fraction: 1, P: 0.05}}
	small, _ := f.FECRekeyBandwidth(1000, 1000, mix)
	large, _ := f.FECRekeyBandwidth(10000, 1000, mix)
	if large < 9*small || large > 11*small {
		t.Fatalf("bandwidth not ~linear in key count: %v vs %v", small, large)
	}
	zero, _ := f.FECRekeyBandwidth(0, 1000, mix)
	if zero != 0 {
		t.Fatalf("zero keys cost %v", zero)
	}
}
