package analytic

import (
	"fmt"
	"math"
	"sort"
)

// MultiClassLossScenario generalizes the Section 4.3 evaluation beyond two
// loss classes: a population with an arbitrary discrete loss-rate
// distribution, organized into some number of loss-homogenized key trees.
// It answers the natural follow-up the paper leaves open — how many trees
// are worth maintaining, and where to draw the class boundaries.
type MultiClassLossScenario struct {
	N      float64
	L      float64
	Degree int
	// Classes are the population's loss classes; fractions must sum to 1.
	// They do not need to be sorted.
	Classes []LossShare
}

// DefaultMultiClassScenario returns a four-class population spanning the
// paper's 2%–20% range: 40% at 2%, 30% at 5%, 20% at 10%, 10% at 20%.
func DefaultMultiClassScenario() MultiClassLossScenario {
	return MultiClassLossScenario{
		N: 65536, L: 256, Degree: 4,
		Classes: []LossShare{
			{Fraction: 0.4, P: 0.02},
			{Fraction: 0.3, P: 0.05},
			{Fraction: 0.2, P: 0.10},
			{Fraction: 0.1, P: 0.20},
		},
	}
}

// CostOneKeyTree evaluates the whole mixed population in one tree.
func (s MultiClassLossScenario) CostOneKeyTree() (float64, error) {
	t := WKABKRTree{N: s.N, L: s.L, Degree: s.Degree, Mix: s.Classes}
	return t.RekeyBandwidth()
}

// CostGrouped evaluates a specific partition of the (sorted) classes into
// contiguous groups, one key tree per group. Departures are proportional
// to tree size.
func (s MultiClassLossScenario) CostGrouped(groups [][]LossShare) (float64, error) {
	trees := make([]WKABKRTree, 0, len(groups))
	for _, g := range groups {
		frac := 0.0
		for _, c := range g {
			frac += c.Fraction
		}
		if frac <= 0 {
			continue
		}
		mix := make([]LossShare, 0, len(g))
		for _, c := range g {
			mix = append(mix, LossShare{Fraction: c.Fraction / frac, P: c.P})
		}
		trees = append(trees, WKABKRTree{
			N: frac * s.N, L: frac * s.L, Degree: s.Degree, Mix: mix,
		})
	}
	mp := MultiTreeParams{Trees: trees, IncludeGroupKey: true}
	return mp.RekeyBandwidth()
}

// BestPartition finds the cheapest organization into exactly k trees by
// exhaustive search over contiguous partitions of the loss-sorted classes
// (an optimal grouping is always contiguous in loss rate: swapping members
// across a boundary only increases the spread inside each tree). It
// returns the cost and the chosen boundaries (upper loss bound of each
// tree except the last).
func (s MultiClassLossScenario) BestPartition(k int) (float64, []float64, error) {
	classes := append([]LossShare(nil), s.Classes...)
	sort.Slice(classes, func(i, j int) bool { return classes[i].P < classes[j].P })
	c := len(classes)
	if k < 1 || k > c {
		return 0, nil, fmt.Errorf("%w: %d trees for %d classes", ErrBadParams, k, c)
	}
	best := math.Inf(1)
	var bestBounds []float64

	// Choose k−1 cut points among the c−1 gaps.
	cuts := make([]int, k-1)
	var recurse func(pos, from int) error
	recurse = func(pos, from int) error {
		if pos == k-1 {
			groups := make([][]LossShare, 0, k)
			prev := 0
			for _, cut := range cuts {
				groups = append(groups, classes[prev:cut])
				prev = cut
			}
			groups = append(groups, classes[prev:])
			cost, err := s.CostGrouped(groups)
			if err != nil {
				return err
			}
			if cost < best {
				best = cost
				bestBounds = bestBounds[:0]
				for _, cut := range cuts {
					bestBounds = append(bestBounds, classes[cut-1].P)
				}
			}
			return nil
		}
		for cut := from; cut <= c-(k-1-pos); cut++ {
			cuts[pos] = cut
			if err := recurse(pos+1, cut+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := recurse(0, 1); err != nil {
		return 0, nil, err
	}
	return best, append([]float64(nil), bestBounds...), nil
}

// TreeCountSweep returns, for k = 1..len(Classes), the best achievable
// cost with k trees — quantifying the diminishing returns of finer
// loss homogenization.
func (s MultiClassLossScenario) TreeCountSweep() ([]float64, error) {
	out := make([]float64, 0, len(s.Classes))
	for k := 1; k <= len(s.Classes); k++ {
		cost, _, err := s.BestPartition(k)
		if err != nil {
			return nil, err
		}
		out = append(out, cost)
	}
	return out, nil
}
