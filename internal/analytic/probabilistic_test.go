package analytic

import (
	"errors"
	"math"
	"testing"
)

func skewedGroup(alpha, pHigh, pLow float64) ProbabilisticLKH {
	return ProbabilisticLKH{
		N:      65536,
		Degree: 4,
		Classes: []LeaveClass{
			{Fraction: alpha, PLeave: pHigh},
			{Fraction: 1 - alpha, PLeave: pLow},
		},
	}
}

func TestProbabilisticUniformNoGain(t *testing.T) {
	// With identical leave probabilities the optimal depths collapse to
	// the balanced ones: no gain.
	p := skewedGroup(0.5, 0.01, 0.01)
	gain, err := p.Gain()
	if err != nil {
		t.Fatalf("Gain: %v", err)
	}
	if math.Abs(gain) > 0.01 {
		t.Fatalf("uniform population gain %v, want ≈0", gain)
	}
}

func TestProbabilisticSkewGain(t *testing.T) {
	// The paper's point (via Selcuk et al.): when leave probabilities are
	// very skewed, placing churners near the root pays off.
	p := skewedGroup(0.05, 0.5, 0.001) // 5% of members cause most churn
	gain, err := p.Gain()
	if err != nil {
		t.Fatalf("Gain: %v", err)
	}
	if gain < 0.10 {
		t.Fatalf("heavily skewed population gains only %.1f%%", 100*gain)
	}
	// Gain grows with skew.
	mild := skewedGroup(0.05, 0.05, 0.01)
	mildGain, _ := mild.Gain()
	if mildGain >= gain {
		t.Fatalf("mild skew gain %v not below heavy skew gain %v", mildGain, gain)
	}
}

func TestProbabilisticDepthsRespectKraftAndFloors(t *testing.T) {
	p := skewedGroup(0.1, 0.3, 0.005)
	depths, err := p.OptimalDepths()
	if err != nil {
		t.Fatalf("OptimalDepths: %v", err)
	}
	// Kraft: Σ N_i·d^{-depth_i} ≤ 1 (+ float tolerance).
	kraft := 0.0
	for i, c := range p.Classes {
		kraft += c.Fraction * p.N * math.Pow(4, -depths[i])
	}
	if kraft > 1.0001 {
		t.Fatalf("Kraft sum %v exceeds 1: depths unrealizable", kraft)
	}
	// High-churn class sits strictly shallower.
	if depths[0] >= depths[1] {
		t.Fatalf("high-churn depth %v not above low-churn depth %v", depths[0], depths[1])
	}
	// No class sits shallower than its packing floor.
	for i, c := range p.Classes {
		floor := math.Log(c.Fraction*p.N) / math.Log(4)
		if depths[i] < floor-1e-9 {
			t.Fatalf("class %d depth %v below packing floor %v", i, depths[i], floor)
		}
	}
}

func TestProbabilisticValidation(t *testing.T) {
	bad := ProbabilisticLKH{N: 100, Degree: 4, Classes: []LeaveClass{{Fraction: 0.5, PLeave: 0.1}}}
	if _, err := bad.Gain(); !errors.Is(err, ErrBadParams) {
		t.Fatalf("fractions not summing to 1: err=%v", err)
	}
	bad2 := ProbabilisticLKH{N: 1, Degree: 4, Classes: []LeaveClass{{Fraction: 1, PLeave: 0.1}}}
	if _, err := bad2.Gain(); !errors.Is(err, ErrBadParams) {
		t.Fatalf("n<2: err=%v", err)
	}
}

func TestProbabilisticNeverLeavers(t *testing.T) {
	p := ProbabilisticLKH{
		N:      4096,
		Degree: 4,
		Classes: []LeaveClass{
			{Fraction: 0.2, PLeave: 0.2},
			{Fraction: 0.8, PLeave: 0}, // archival subscribers
		},
	}
	gain, err := p.Gain()
	if err != nil {
		t.Fatalf("Gain: %v", err)
	}
	if gain <= 0 {
		t.Fatalf("gain %v, want positive when 80%% of members never leave", gain)
	}
}
