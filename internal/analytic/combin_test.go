package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLchooseSmallValues(t *testing.T) {
	tests := []struct {
		n, k float64
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 1, 5}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {20, 10, 184756},
	}
	for _, tt := range tests {
		got := math.Exp(lchoose(tt.n, tt.k))
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("C(%v,%v) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestLchooseOutOfRange(t *testing.T) {
	if !math.IsInf(lchoose(5, 6), -1) {
		t.Error("C(5,6) should be 0 (log -Inf)")
	}
	if !math.IsInf(lchoose(5, -1), -1) {
		t.Error("C(5,-1) should be 0 (log -Inf)")
	}
}

func TestChooseRatioExactEnumeration(t *testing.T) {
	// chooseRatio(n, s, l) must equal the exact fraction of l-subsets of n
	// leaves that avoid a fixed subtree of s leaves. Enumerate all subsets
	// for small n.
	n, s, l := 16, 4, 3
	total, miss := 0, 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				total++
				if a >= s && b >= s && c >= s { // subtree = leaves 0..s-1
					miss++
				}
			}
		}
	}
	want := float64(miss) / float64(total)
	got := chooseRatio(float64(n), float64(s), float64(l))
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("chooseRatio(16,4,3)=%v, enumeration gives %v", got, want)
	}
}

func TestChooseRatioBoundsQuick(t *testing.T) {
	f := func(nRaw, sRaw, lRaw uint16) bool {
		n := float64(nRaw%1000) + 2
		s := math.Mod(float64(sRaw), n-1) + 1
		l := math.Mod(float64(lRaw), n-s)
		r := chooseRatio(n, s, l)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseRatioDegenerateCases(t *testing.T) {
	if got := chooseRatio(100, 10, 0); got != 1 {
		t.Errorf("l=0: got %v, want 1 (no departures cannot hit the subtree)", got)
	}
	if got := chooseRatio(100, 100, 5); got != 0 {
		t.Errorf("s=n: got %v, want 0 (subtree is the whole tree)", got)
	}
	if got := chooseRatio(100, 96, 5); got != 0 {
		t.Errorf("n-s<l: got %v, want 0", got)
	}
}

func TestChooseRatioMonotoneInL(t *testing.T) {
	// More departures → more likely to hit the subtree → smaller ratio.
	prev := 2.0
	for l := 0.0; l <= 60; l += 5 {
		r := chooseRatio(64, 8, l)
		if r > prev {
			t.Fatalf("chooseRatio not monotone: l=%v gives %v > previous %v", l, r, prev)
		}
		prev = r
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 20, 100} {
		for _, p := range []float64{0, 0.02, 0.2, 0.5, 0.97, 1} {
			sum := 0.0
			for j := 0; j <= n; j++ {
				sum += binomPMF(n, p, j)
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("binomPMF(n=%d,p=%v) sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomPMFKnownValues(t *testing.T) {
	// Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
	want := []float64{0.0625, 0.25, 0.375, 0.25, 0.0625}
	for j, w := range want {
		if got := binomPMF(4, 0.5, j); !almostEqual(got, w, 1e-12) {
			t.Errorf("binomPMF(4,0.5,%d)=%v, want %v", j, got, w)
		}
	}
}

func TestBinomCDFMonotoneAndBounded(t *testing.T) {
	prev := 0.0
	for j := 0; j <= 30; j++ {
		c := binomCDF(30, 0.3, j)
		if c < prev || c > 1 {
			t.Fatalf("binomCDF not monotone/bounded at j=%d: %v (prev %v)", j, c, prev)
		}
		prev = c
	}
	if binomCDF(30, 0.3, 30) != 1 {
		t.Error("binomCDF at n should be 1")
	}
	if binomCDF(30, 0.3, -1) != 0 {
		t.Error("binomCDF below 0 should be 0")
	}
}
