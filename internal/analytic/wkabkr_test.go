package analytic

import (
	"errors"
	"testing"
)

func TestExpectedTransmissionsLossless(t *testing.T) {
	got := ExpectedTransmissions(1000, []LossShare{{Fraction: 1, P: 0}})
	if got != 1 {
		t.Fatalf("lossless E[M]=%v, want 1", got)
	}
}

func TestExpectedTransmissionsSingleReceiverGeometric(t *testing.T) {
	// One receiver with loss p needs Geometric(1-p) transmissions:
	// E[M] = 1/(1-p).
	for _, p := range []float64{0.02, 0.2, 0.5, 0.9} {
		got := ExpectedTransmissions(1, []LossShare{{Fraction: 1, P: p}})
		want := 1 / (1 - p)
		if !almostEqual(got, want, 1e-6) {
			t.Errorf("p=%v: E[M]=%v, want %v", p, got, want)
		}
	}
}

func TestExpectedTransmissionsMonotone(t *testing.T) {
	// More receivers or higher loss → more transmissions.
	prev := 0.0
	for _, r := range []float64{1, 4, 16, 256, 65536} {
		e := ExpectedTransmissions(r, []LossShare{{Fraction: 1, P: 0.2}})
		if e <= prev {
			t.Fatalf("E[M] not increasing in r: r=%v gives %v (prev %v)", r, e, prev)
		}
		prev = e
	}
	prev = 0.0
	for _, p := range []float64{0.01, 0.1, 0.3, 0.6} {
		e := ExpectedTransmissions(100, []LossShare{{Fraction: 1, P: p}})
		if e <= prev {
			t.Fatalf("E[M] not increasing in p: p=%v gives %v (prev %v)", p, e, prev)
		}
		prev = e
	}
}

func TestExpectedTransmissionsMixtureBetweenExtremes(t *testing.T) {
	mix := []LossShare{{Fraction: 0.5, P: 0.02}, {Fraction: 0.5, P: 0.2}}
	mixed := ExpectedTransmissions(100, mix)
	low := ExpectedTransmissions(100, []LossShare{{Fraction: 1, P: 0.02}})
	high := ExpectedTransmissions(100, []LossShare{{Fraction: 1, P: 0.2}})
	if mixed <= low || mixed >= high {
		t.Fatalf("mixture E[M]=%v not between pure cases [%v, %v]", mixed, low, high)
	}
	// But the mixture must be dominated by the high-loss half: with 50
	// high-loss receivers present, it costs nearly as much as all-high.
	halfHigh := ExpectedTransmissions(50, []LossShare{{Fraction: 1, P: 0.2}})
	if mixed < halfHigh {
		t.Fatalf("mixture E[M]=%v below its high-loss component alone %v", mixed, halfHigh)
	}
}

func TestNormalizeMixValidation(t *testing.T) {
	if _, err := NormalizeMix([]LossShare{{Fraction: 0.5, P: 0.1}}); !errors.Is(err, ErrBadParams) {
		t.Error("fractions not summing to 1 must be rejected")
	}
	if _, err := NormalizeMix([]LossShare{{Fraction: 1, P: 1.0}}); !errors.Is(err, ErrBadParams) {
		t.Error("p=1 must be rejected (key can never be delivered)")
	}
	out, err := NormalizeMix([]LossShare{{Fraction: 1, P: 0.1}, {Fraction: 0, P: 0.9}})
	if err != nil {
		t.Fatalf("NormalizeMix: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("zero-fraction share not dropped: %v", out)
	}
}

func TestWKABKRTreeHomogeneousPaperShape(t *testing.T) {
	// Homogeneous 2% loss, N=65536, L=256: bandwidth must exceed the
	// loss-free key count Ne but not wildly (low loss ⇒ little replication).
	tr := WKABKRTree{N: 65536, L: 256, Degree: 4, Mix: []LossShare{{Fraction: 1, P: 0.02}}}
	v, err := tr.RekeyBandwidth()
	if err != nil {
		t.Fatalf("RekeyBandwidth: %v", err)
	}
	ne := BatchRekeyCost(65536, 256, 4)
	if v <= ne {
		t.Fatalf("bandwidth %v not above loss-free cost %v", v, ne)
	}
	if v > 2*ne {
		t.Fatalf("bandwidth %v implausibly high for 2%% loss (Ne=%v)", v, ne)
	}
}

func TestFig6LossHeterogeneity(t *testing.T) {
	// Paper Fig. 6 observations:
	//  1. Two random key trees are slightly WORSE than one key tree.
	//  2. Loss-homogenized trees win by up to ≈12.1% (peak near α=0.3).
	//  3. At α = 0 and α = 1 all schemes coincide.
	base := DefaultLossScenario()

	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.8} {
		p := base
		p.Alpha = alpha
		one, err := p.CostOneKeyTree()
		if err != nil {
			t.Fatalf("α=%v one: %v", alpha, err)
		}
		rnd, err := p.CostTwoRandomTrees()
		if err != nil {
			t.Fatalf("α=%v random: %v", alpha, err)
		}
		hom, err := p.CostLossHomogenized()
		if err != nil {
			t.Fatalf("α=%v homog: %v", alpha, err)
		}
		if rnd <= one {
			t.Errorf("α=%v: two random trees (%v) should be slightly worse than one tree (%v)", alpha, rnd, one)
		}
		if rnd > 1.15*one {
			t.Errorf("α=%v: two random trees (%v) should be only slightly worse than one tree (%v)", alpha, rnd, one)
		}
		if hom >= one {
			t.Errorf("α=%v: loss-homogenized (%v) should beat one tree (%v)", alpha, hom, one)
		}
	}

	// Peak gain near α≈0.2–0.3 of roughly 12%.
	best := 0.0
	for alpha := 0.05; alpha < 1; alpha += 0.05 {
		p := base
		p.Alpha = alpha
		one, _ := p.CostOneKeyTree()
		hom, _ := p.CostLossHomogenized()
		if g := (one - hom) / one; g > best {
			best = g
		}
	}
	if best < 0.08 || best > 0.16 {
		t.Errorf("peak loss-homogenized gain %.1f%%, paper reports 12.1%%", 100*best)
	}

	for _, alpha := range []float64{0, 1} {
		p := base
		p.Alpha = alpha
		one, _ := p.CostOneKeyTree()
		hom, _ := p.CostLossHomogenized()
		if !almostEqual(one, hom, 1e-9) {
			t.Errorf("α=%v: homogeneous population must degenerate to one tree (%v vs %v)", alpha, hom, one)
		}
	}
}

func TestFig7Misplacement(t *testing.T) {
	// Paper Fig. 7 observations (α=0.2, ph=20%, pl=2%):
	//  1. β=0 (correct partitioning) is best.
	//  2. Small β (≤0.1) still beats the one-keytree scheme.
	//  3. At β=0.8 the scheme is slightly worse than one keytree.
	//  4. β=1.0 is better than β=0.8 (the swap becomes a relabeling).
	p := DefaultLossScenario()
	p.Alpha = 0.2
	one, err := p.CostOneKeyTree()
	if err != nil {
		t.Fatalf("one: %v", err)
	}

	c0, err := p.CostMisplaced(0)
	if err != nil {
		t.Fatalf("β=0: %v", err)
	}
	correct, _ := p.CostLossHomogenized()
	if !almostEqual(c0, correct, 1e-9) {
		t.Errorf("β=0 (%v) must equal the correctly partitioned cost (%v)", c0, correct)
	}

	prev := c0
	for _, beta := range []float64{0.1, 0.3, 0.5, 0.8} {
		c, err := p.CostMisplaced(beta)
		if err != nil {
			t.Fatalf("β=%v: %v", beta, err)
		}
		if c < prev {
			t.Errorf("cost should grow with β up to 0.8: β=%v gives %v < %v", beta, c, prev)
		}
		prev = c
	}

	c01, _ := p.CostMisplaced(0.1)
	if c01 >= one {
		t.Errorf("β=0.1 (%v) should still beat one keytree (%v)", c01, one)
	}
	c08, _ := p.CostMisplaced(0.8)
	if c08 <= one {
		t.Errorf("β=0.8 (%v) should be slightly worse than one keytree (%v)", c08, one)
	}
	c10, _ := p.CostMisplaced(1.0)
	if c10 >= c08 {
		t.Errorf("β=1.0 (%v) should improve on β=0.8 (%v) — the paper's observed dip", c10, c08)
	}

	if _, err := p.CostMisplaced(1.5); !errors.Is(err, ErrBadParams) {
		t.Error("β out of range must be rejected")
	}
}

func TestMultiTreeGroupKeyAccounting(t *testing.T) {
	tr := WKABKRTree{N: 1024, L: 8, Degree: 4, Mix: []LossShare{{Fraction: 1, P: 0.02}}}
	with := MultiTreeParams{Trees: []WKABKRTree{tr, tr}, IncludeGroupKey: true}
	without := MultiTreeParams{Trees: []WKABKRTree{tr, tr}, IncludeGroupKey: false}
	vw, err := with.RekeyBandwidth()
	if err != nil {
		t.Fatalf("with: %v", err)
	}
	vo, err := without.RekeyBandwidth()
	if err != nil {
		t.Fatalf("without: %v", err)
	}
	if vw <= vo {
		t.Fatal("group-key accounting added no cost")
	}
	if vw-vo > 0.05*vo {
		t.Fatalf("group-key cost %v suspiciously large vs per-tree cost %v", vw-vo, vo)
	}
	// Single tree: no extra group key (its root is already the group key).
	single := MultiTreeParams{Trees: []WKABKRTree{tr}, IncludeGroupKey: true}
	vs, _ := single.RekeyBandwidth()
	base, _ := tr.RekeyBandwidth()
	if !almostEqual(vs, base, 1e-9) {
		t.Fatal("single-tree multi-tree wrapper must not add group-key cost")
	}
}

func TestWKABKRNoDeparturesNoCost(t *testing.T) {
	tr := WKABKRTree{N: 1024, L: 0, Degree: 4, Mix: []LossShare{{Fraction: 1, P: 0.2}}}
	v, err := tr.RekeyBandwidth()
	if err != nil {
		t.Fatalf("RekeyBandwidth: %v", err)
	}
	if v != 0 {
		t.Fatalf("no departures cost %v, want 0", v)
	}
}
