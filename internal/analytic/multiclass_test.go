package analytic

import (
	"errors"
	"testing"
)

func TestMultiClassOneTreeMatchesTwoClassScenario(t *testing.T) {
	// With exactly two classes the generalized scenario must reproduce the
	// Fig. 6 two-class numbers.
	two := DefaultLossScenario()
	two.Alpha = 0.2
	wantOne, err := two.CostOneKeyTree()
	if err != nil {
		t.Fatal(err)
	}
	mc := MultiClassLossScenario{
		N: two.N, L: two.L, Degree: two.Degree,
		Classes: []LossShare{
			{Fraction: 0.8, P: two.Pl},
			{Fraction: 0.2, P: two.Ph},
		},
	}
	gotOne, err := mc.CostOneKeyTree()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gotOne, wantOne, 1e-9) {
		t.Fatalf("one-tree cost %v, two-class scenario gives %v", gotOne, wantOne)
	}
	wantHom, err := two.CostLossHomogenized()
	if err != nil {
		t.Fatal(err)
	}
	gotHom, _, err := mc.BestPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gotHom, wantHom, 1e-9) {
		t.Fatalf("2-tree cost %v, two-class scenario gives %v", gotHom, wantHom)
	}
}

func TestMultiClassTreeCountSweepDiminishingReturns(t *testing.T) {
	s := DefaultMultiClassScenario()
	costs, err := s.TreeCountSweep()
	if err != nil {
		t.Fatalf("TreeCountSweep: %v", err)
	}
	if len(costs) != 4 {
		t.Fatalf("got %d costs, want 4", len(costs))
	}
	// More trees never hurts much and the first split helps most.
	if costs[1] >= costs[0] {
		t.Errorf("2 trees (%v) should beat 1 tree (%v)", costs[1], costs[0])
	}
	firstGain := costs[0] - costs[1]
	lastGain := costs[2] - costs[3]
	if lastGain > firstGain {
		t.Errorf("no diminishing returns: first split saves %v, last saves %v", firstGain, lastGain)
	}
}

func TestMultiClassBestPartitionBounds(t *testing.T) {
	s := DefaultMultiClassScenario()
	cost, bounds, err := s.BestPartition(2)
	if err != nil {
		t.Fatalf("BestPartition: %v", err)
	}
	if len(bounds) != 1 {
		t.Fatalf("bounds=%v, want one boundary", bounds)
	}
	// The boundary must be one of the class rates below the maximum.
	valid := map[float64]bool{0.02: true, 0.05: true, 0.10: true}
	if !valid[bounds[0]] {
		t.Errorf("boundary %v is not a class rate below the max", bounds[0])
	}
	one, err := s.CostOneKeyTree()
	if err != nil {
		t.Fatal(err)
	}
	if cost >= one {
		t.Errorf("best 2-tree cost %v not below one-tree %v", cost, one)
	}
}

func TestMultiClassBestPartitionValidation(t *testing.T) {
	s := DefaultMultiClassScenario()
	if _, _, err := s.BestPartition(0); !errors.Is(err, ErrBadParams) {
		t.Errorf("k=0: err=%v", err)
	}
	if _, _, err := s.BestPartition(5); !errors.Is(err, ErrBadParams) {
		t.Errorf("k>classes: err=%v", err)
	}
}

func TestMultiClassFullSplitEqualsPerClassTrees(t *testing.T) {
	s := DefaultMultiClassScenario()
	full, _, err := s.BestPartition(4)
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]LossShare, len(s.Classes))
	for i, c := range s.Classes {
		groups[i] = []LossShare{c}
	}
	direct, err := s.CostGrouped(groups)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(full, direct, 1e-9) {
		t.Fatalf("4-way best partition %v ≠ per-class trees %v", full, direct)
	}
}
