package analytic

import "testing"

func TestBatchRekeyCostOFTBelowBinaryLKH(t *testing.T) {
	// One blinded key per updated level instead of two child wraps: OFT
	// must cost roughly half of binary LKH across batch sizes.
	for _, l := range []float64{1, 16, 256} {
		lkh := BatchRekeyCost(65536, l, 2)
		oft := BatchRekeyCostOFT(65536, l)
		if oft >= lkh {
			t.Errorf("l=%v: OFT %v not below LKH-2 %v", l, oft, lkh)
		}
		ratio := oft / lkh
		if ratio < 0.4 || ratio > 0.75 {
			t.Errorf("l=%v: OFT/LKH ratio %v outside the ≈0.5–0.7 band", l, ratio)
		}
	}
}

func TestBatchRekeyCostOFTSingleDeparture(t *testing.T) {
	// One departure from a full binary tree of height h: every non-root
	// interior level contributes P_i = S_i/N = 2^{-i}, so the interior sum
	// telescopes to h−1, plus one leaf blind: h in total.
	got := BatchRekeyCostOFT(1024, 1) // h = 10
	if got < 9.99 || got > 10.01 {
		t.Fatalf("NeOFT(1024, 1) = %v, want 10", got)
	}
}

func TestBatchRekeyCostOFTDegenerate(t *testing.T) {
	if got := BatchRekeyCostOFT(1, 1); got != 0 {
		t.Errorf("singleton cost %v", got)
	}
	if got := BatchRekeyCostOFT(100, 0); got != 0 {
		t.Errorf("zero departures cost %v", got)
	}
}

func TestTwoPartitionOFTReductionCarriesOver(t *testing.T) {
	// Section 2.1.1: the optimization applies to OFT. At the Table 1
	// defaults the TT-over-OFT scheme must beat the one-OFT-tree baseline.
	p := DefaultTwoPartitionParams()
	one, err := p.CostOneKeyTreeOFT()
	if err != nil {
		t.Fatal(err)
	}
	tt, err := p.CostTTOFT()
	if err != nil {
		t.Fatal(err)
	}
	if tt >= one {
		t.Fatalf("TT-over-OFT (%v) does not beat one OFT tree (%v)", tt, one)
	}
	red := (one - tt) / one
	if red < 0.08 {
		t.Errorf("OFT two-partition reduction only %.1f%%", 100*red)
	}
	// K=0 fallback.
	p0 := p
	p0.K = 0
	tt0, err := p0.CostTTOFT()
	if err != nil {
		t.Fatal(err)
	}
	one0, _ := p0.CostOneKeyTreeOFT()
	if !almostEqual(tt0, one0, 1e-9) {
		t.Fatalf("K=0: TT-OFT %v must equal one-OFT %v", tt0, one0)
	}
}
