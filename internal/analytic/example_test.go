package analytic_test

import (
	"fmt"

	"groupkey/internal/analytic"
)

// ExampleTwoPartitionParams reproduces the paper's headline Fig. 4 numbers
// at the Table 1 defaults.
func ExampleTwoPartitionParams() {
	p := analytic.DefaultTwoPartitionParams()
	p.Alpha = 0.9
	one, _ := p.CostOneKeyTree()
	qt, _ := p.CostQT()
	fmt.Printf("one-keytree: %.0f keys/period\n", one)
	fmt.Printf("qt-scheme:   %.0f keys/period (%.1f%% reduction)\n", qt, 100*(one-qt)/one)
	// Output:
	// one-keytree: 25594 keys/period
	// qt-scheme:   17838 keys/period (30.3% reduction)
}

// ExampleBatchRekeyCost evaluates Appendix A's Ne(N, L) closed form.
func ExampleBatchRekeyCost() {
	// One departure from a full 4-ary tree of 65536 members costs d·h.
	fmt.Printf("Ne(65536, 1) = %.0f keys\n", analytic.BatchRekeyCost(65536, 1, 4))
	fmt.Printf("Ne(65536, 256) = %.0f keys\n", analytic.BatchRekeyCost(65536, 256, 4))
	// Output:
	// Ne(65536, 1) = 32 keys
	// Ne(65536, 256) = 3905 keys
}

// ExampleLossScenarioParams reproduces the Fig. 6 comparison at α = 0.2.
func ExampleLossScenarioParams() {
	p := analytic.DefaultLossScenario()
	p.Alpha = 0.2
	one, _ := p.CostOneKeyTree()
	hom, _ := p.CostLossHomogenized()
	fmt.Printf("one mixed tree:   %.0f keys\n", one)
	fmt.Printf("loss-homogenized: %.0f keys (%.1f%% gain)\n", hom, 100*(one-hom)/one)
	// Output:
	// one mixed tree:   6799 keys
	// loss-homogenized: 6051 keys (11.0% gain)
}
