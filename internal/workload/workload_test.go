package workload

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"groupkey/internal/keytree"
)

func testRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed+1))
}

func TestExponentialMean(t *testing.T) {
	rng := testRNG(1)
	e := Exponential{M: 180}
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += e.Sample(rng)
	}
	got := sum / n
	if math.Abs(got-180)/180 > 0.02 {
		t.Fatalf("empirical mean %v, want ≈180", got)
	}
	if e.Mean() != 180 {
		t.Fatalf("Mean()=%v, want 180", e.Mean())
	}
}

func TestParetoSampleProperties(t *testing.T) {
	rng := testRNG(2)
	p := Pareto{Xm: 60, Shape: 2}
	sum := 0.0
	const n = 500000
	for i := 0; i < n; i++ {
		x := p.Sample(rng)
		if x < p.Xm {
			t.Fatalf("Pareto sample %v below scale %v", x, p.Xm)
		}
		sum += x
	}
	got := sum / n
	want := p.Mean() // 120
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical mean %v, want ≈%v", got, want)
	}
	if !math.IsInf(Pareto{Xm: 1, Shape: 1}.Mean(), 1) {
		t.Error("shape ≤ 1 should have infinite mean")
	}
}

func TestTwoClassComposition(t *testing.T) {
	rng := testRNG(3)
	tc := PaperDefault()
	short := 0
	const n = 100000
	for i := 0; i < n; i++ {
		class, dur := tc.SampleClass(rng)
		if dur < 0 {
			t.Fatal("negative duration")
		}
		if class == ClassShort {
			short++
		}
	}
	frac := float64(short) / n
	if math.Abs(frac-0.8) > 0.01 {
		t.Fatalf("short-class fraction %v, want ≈0.8", frac)
	}
	wantMean := 0.8*180 + 0.2*10800
	if !closeRel(tc.Mean(), wantMean, 1e-12) {
		t.Fatalf("Mean()=%v, want %v", tc.Mean(), wantMean)
	}
}

func closeRel(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestMBoneSessionShape(t *testing.T) {
	// Almeroth–Ammar shape: mean hours, median minutes.
	tc := MBoneSession()
	mean := tc.Mean()
	if mean < 4*3600 || mean > 6*3600 {
		t.Fatalf("MBone mean %v s, want ≈5 h", mean)
	}
	// Empirical median.
	rng := testRNG(4)
	var durs []float64
	for i := 0; i < 50001; i++ {
		_, d := tc.SampleClass(rng)
		durs = append(durs, d)
	}
	median := quickSelectMedian(durs)
	if median > 30*60 {
		t.Fatalf("MBone median %v s, want minutes, not hours", median)
	}
}

func quickSelectMedian(xs []float64) float64 {
	// Simple nth-element via sort; fine for tests.
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestArrivalRateLittlesLaw(t *testing.T) {
	tc := PaperDefault()
	n := 65536.0
	lambda := ArrivalRateForGroupSize(n, tc)
	if !closeRel(lambda*tc.Mean(), n, 1e-12) {
		t.Fatalf("λ·E[D]=%v, want N=%v", lambda*tc.Mean(), n)
	}
}

func TestSessionSteadyStateGroupSize(t *testing.T) {
	// Prime N members and run: the live population should hover near N.
	tc := PaperDefault()
	const n = 2000
	cfg := Config{
		Seed:        7,
		ArrivalRate: ArrivalRateForGroupSize(n, tc),
		Durations:   tc,
		Loss:        PaperLossModel(0.2),
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Prime(n)
	horizon := 3600.0
	events := s.Events(horizon)

	live := n
	minLive, maxLive := live, live
	prev := -1.0
	for _, e := range events {
		if e.Time < prev {
			t.Fatal("events not time-sorted")
		}
		prev = e.Time
		switch e.Kind {
		case EventJoin:
			live++
		case EventLeave:
			live--
		}
		if live < minLive {
			minLive = live
		}
		if live > maxLive {
			maxLive = live
		}
	}
	if minLive < n*3/4 || maxLive > n*5/4 {
		t.Fatalf("population wandered to [%d, %d], want near %d", minLive, maxLive, n)
	}
}

func TestSessionLossAssignment(t *testing.T) {
	cfg := Config{
		Seed:        9,
		ArrivalRate: 0,
		Durations:   PaperDefault(),
		Loss:        PaperLossModel(0.3),
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	infos := s.Prime(20000)
	high := 0
	for _, m := range infos {
		switch m.LossRate {
		case 0.20:
			high++
		case 0.02:
		default:
			t.Fatalf("unexpected loss rate %v", m.LossRate)
		}
	}
	frac := float64(high) / float64(len(infos))
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("high-loss fraction %v, want ≈0.3", frac)
	}
}

func TestSessionDeterministicBySeed(t *testing.T) {
	build := func(seed uint64) []Event {
		cfg := Config{Seed: seed, ArrivalRate: 0.5, Durations: PaperDefault(), Loss: PaperLossModel(0.2)}
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		s.Prime(50)
		return s.Events(600)
	}
	a := build(42)
	b := build(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different trace lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := build(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(Config{ArrivalRate: -1, Durations: PaperDefault()}); err == nil {
		t.Error("negative arrival rate accepted")
	}
	if _, err := NewSession(Config{Durations: TwoClass{Alpha: 0.5}}); err == nil {
		t.Error("nil distributions accepted")
	}
	bad := PaperDefault()
	bad.Alpha = 2
	if _, err := NewSession(Config{Durations: bad}); err == nil {
		t.Error("alpha out of range accepted")
	}
}

func TestPeriodBatchesBasic(t *testing.T) {
	events := []Event{
		{Time: 10, Kind: EventJoin, Member: 1},
		{Time: 70, Kind: EventJoin, Member: 2},
		{Time: 75, Kind: EventLeave, Member: 1},
		{Time: 130, Kind: EventLeave, Member: 2},
	}
	batches := PeriodBatches(events, 60, 180)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	if len(batches[0].Joins) != 1 || batches[0].Joins[0] != 1 {
		t.Errorf("period 0 joins = %v, want [1]", batches[0].Joins)
	}
	if len(batches[1].Joins) != 1 || batches[1].Joins[0] != 2 {
		t.Errorf("period 1 joins = %v, want [2]", batches[1].Joins)
	}
	if len(batches[1].Leaves) != 1 || batches[1].Leaves[0] != 1 {
		t.Errorf("period 1 leaves = %v, want [1]", batches[1].Leaves)
	}
	if len(batches[2].Leaves) != 1 || batches[2].Leaves[0] != 2 {
		t.Errorf("period 2 leaves = %v, want [2]", batches[2].Leaves)
	}
}

func TestPeriodBatchesDropsFlashMembers(t *testing.T) {
	// A member joining and leaving within one period is never admitted.
	events := []Event{
		{Time: 10, Kind: EventJoin, Member: 1},
		{Time: 20, Kind: EventLeave, Member: 1},
		{Time: 30, Kind: EventJoin, Member: 2},
	}
	batches := PeriodBatches(events, 60, 60)
	if len(batches) != 1 {
		t.Fatalf("got %d batches, want 1", len(batches))
	}
	if len(batches[0].Joins) != 1 || batches[0].Joins[0] != 2 {
		t.Errorf("joins = %v, want [2]", batches[0].Joins)
	}
	if len(batches[0].Leaves) != 0 {
		t.Errorf("leaves = %v, want empty", batches[0].Leaves)
	}
}

func TestPeriodBatchesNeverConflict(t *testing.T) {
	// Property: batches produced from any generated trace never contain a
	// member in both Joins and Leaves of the same batch, and every leave
	// refers to a previously admitted member.
	f := func(seed uint64, rateRaw uint8) bool {
		rate := float64(rateRaw%50)/10 + 0.1
		cfg := Config{Seed: seed, ArrivalRate: rate, Durations: PaperDefault(), Loss: PaperLossModel(0.2)}
		s, err := NewSession(cfg)
		if err != nil {
			return false
		}
		s.Prime(100)
		horizon := 1200.0
		batches := PeriodBatches(s.Events(horizon), 60, horizon)
		admitted := make(map[keytree.MemberID]bool, 100)
		for i := 1; i <= 100; i++ {
			admitted[keytree.MemberID(i)] = true
		}
		for _, b := range batches {
			inBatch := make(map[keytree.MemberID]bool)
			for _, m := range b.Joins {
				if inBatch[m] || admitted[m] {
					return false
				}
				inBatch[m] = true
			}
			for _, m := range b.Leaves {
				if inBatch[m] || !admitted[m] {
					return false
				}
				inBatch[m] = true
			}
			for _, m := range b.Joins {
				admitted[m] = true
			}
			for _, m := range b.Leaves {
				delete(admitted, m)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodBatchesDegenerate(t *testing.T) {
	if got := PeriodBatches(nil, 0, 100); got != nil {
		t.Error("tp=0 should return nil")
	}
	if got := PeriodBatches(nil, 60, 0); got != nil {
		t.Error("horizon=0 should return nil")
	}
}

func TestDiurnalArrivals(t *testing.T) {
	// With a sinusoidal rate of period 2000s and amplitude 0.8, the peak
	// half-period (centered at t=500) must see far more arrivals than the
	// trough half-period (centered at t=1500).
	const period = 2000.0
	cfg := Config{
		Seed:        21,
		ArrivalRate: 2.0,
		Durations:   PaperDefault(),
		Loss:        PaperLossModel(0.2),
		RateFn:      DiurnalRate(0.8, period),
		RateCeil:    1.8,
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	events := s.Events(period)
	peak, trough := 0, 0
	for _, e := range events {
		if e.Kind != EventJoin {
			continue
		}
		if e.Time < period/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak+trough == 0 {
		t.Fatal("no arrivals generated")
	}
	// Expected ratio: ∫(1+0.8 sin) over first half vs second half =
	// (1000+509.3)/(1000−509.3) ≈ 3.1.
	ratio := float64(peak) / float64(trough)
	if ratio < 2.2 || ratio > 4.2 {
		t.Fatalf("peak/trough arrival ratio %.2f, want ≈3.1", ratio)
	}
	// Total volume stays near the base rate × horizon (the modulation
	// averages to 1).
	total := float64(peak + trough)
	if total < 0.85*2.0*period || total > 1.15*2.0*period {
		t.Fatalf("total arrivals %v, want ≈%v", total, 2.0*period)
	}
}

func TestRateFnClampsOvershoot(t *testing.T) {
	// A RateFn exceeding RateCeil is clamped rather than breaking the
	// thinning sampler.
	cfg := Config{
		Seed:        22,
		ArrivalRate: 1.0,
		Durations:   PaperDefault(),
		Loss:        PaperLossModel(0.2),
		RateFn:      func(float64) float64 { return 5 }, // lies above ceil
		RateCeil:    1,
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	for _, e := range s.Events(1000) {
		if e.Kind == EventJoin {
			joins++
		}
	}
	// Accept probability clamps to 1: effectively rate = ArrivalRate.
	if joins < 850 || joins > 1150 {
		t.Fatalf("joins=%d, want ≈1000", joins)
	}
}
