package workload

import (
	"bytes"
	"math"
	"testing"
)

// TestFlashCrowdRateShape pins the modulation's four segments.
func TestFlashCrowdRateShape(t *testing.T) {
	fc := FlashCrowd{Start: 10, RampUp: 4, Hold: 6, Decay: 5, Peak: 8}
	rate := fc.Rate()
	if got := rate(0); got != 1 {
		t.Fatalf("baseline before start: %v", got)
	}
	if got := rate(12); got <= 1 || got >= 8 {
		t.Fatalf("mid-ramp rate %v not between baseline and peak", got)
	}
	if got := rate(15); got != 8 {
		t.Fatalf("hold rate %v, want peak", got)
	}
	// One decay constant after the hold ends: 1 + 7/e.
	want := 1 + 7*math.Exp(-1)
	if got := rate(25); math.Abs(got-want) > 1e-9 {
		t.Fatalf("decay rate %v, want %v", got, want)
	}
	if got := rate(1e6); got > 1.0001 {
		t.Fatalf("rate %v never returned to baseline", got)
	}

	step := FlashCrowd{Start: 5, Hold: 2, Peak: 3}
	srate := step.Rate()
	if srate(4.9) != 1 || srate(5) != 3 || srate(7.5) != 1 {
		t.Fatalf("step crowd: %v %v %v", srate(4.9), srate(5), srate(7.5))
	}
}

// TestSynthFlashCrowd checks that the burst actually concentrates joins,
// that the trace is deterministic in the seed, and that it round-trips
// through the trace codec.
func TestSynthFlashCrowd(t *testing.T) {
	cfg := FlashCrowdConfig{
		Seed:     7,
		Baseline: 100,
		Horizon:  60,
		Crowd:    FlashCrowd{Start: 20, RampUp: 2, Hold: 8, Decay: 4, Peak: 10},
	}
	tr, err := SynthFlashCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Primed) != cfg.Baseline {
		t.Fatalf("primed %d members, want %d", len(tr.Primed), cfg.Baseline)
	}
	// Joins per second inside the crowd window vs. the quiet lead-in.
	var quiet, burst float64
	for _, e := range tr.Events {
		if e.Kind != EventJoin {
			continue
		}
		switch {
		case e.Time < 20:
			quiet++
		case e.Time >= 22 && e.Time < 30:
			burst++
		}
	}
	quietRate := quiet / 20
	burstRate := burst / 8
	if quietRate <= 0 {
		t.Fatal("no baseline joins at all")
	}
	if burstRate < 4*quietRate {
		t.Fatalf("flash crowd too weak: burst %.2f joins/s vs quiet %.2f", burstRate, quietRate)
	}

	// Determinism: the serialized trace is byte-identical per seed.
	again, err := SynthFlashCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := WriteTrace(&b1, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b2, again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same seed produced different traces")
	}

	back, err := ReadTrace(&b1)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Events) != len(tr.Events) || len(back.Members) != len(tr.Members) {
		t.Fatalf("round trip lost records: %d/%d events, %d/%d members",
			len(back.Events), len(tr.Events), len(back.Members), len(tr.Members))
	}
}

// TestSynthFlashCrowdRejectsBadShapes pins the validation errors.
func TestSynthFlashCrowdRejectsBadShapes(t *testing.T) {
	bad := []FlashCrowdConfig{
		{Baseline: 10, Horizon: 10, Crowd: FlashCrowd{Peak: 0.5}},
		{Baseline: 10, Horizon: 10, Crowd: FlashCrowd{Peak: 2, Start: -1}},
		{Baseline: 0, Horizon: 10, Crowd: FlashCrowd{Peak: 2}},
		{Baseline: 10, Horizon: 0, Crowd: FlashCrowd{Peak: 2}},
	}
	for i, cfg := range bad {
		if _, err := SynthFlashCrowd(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
