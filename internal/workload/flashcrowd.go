package workload

import (
	"fmt"
	"math"
)

// FlashCrowd parameterizes an MBone-style flash-crowd arrival burst: the
// audience holds at its baseline, ramps up sharply when a broadcast event
// starts, holds near peak, then decays back as the crowd loses interest —
// the join-storm shape Almeroth and Ammar observed at popular MBone
// session starts, and the worst case for batched-rekey admission latency.
type FlashCrowd struct {
	// Start is when the crowd begins arriving (seconds into the trace).
	Start float64
	// RampUp is how long the arrival rate takes to climb from baseline
	// to Peak (seconds; 0 = a step).
	RampUp float64
	// Hold is how long arrivals stay at Peak (seconds).
	Hold float64
	// Decay is the exponential time constant of the fall back to
	// baseline after the hold (seconds; 0 = a step back down).
	Decay float64
	// Peak multiplies the baseline arrival rate at the crowd's height
	// (must be >= 1).
	Peak float64
}

// validate rejects shapes the thinning sampler cannot honor.
func (fc FlashCrowd) validate() error {
	if fc.Peak < 1 {
		return fmt.Errorf("workload: flash crowd peak %v below baseline", fc.Peak)
	}
	if fc.Start < 0 || fc.RampUp < 0 || fc.Hold < 0 || fc.Decay < 0 {
		return fmt.Errorf("workload: negative flash crowd timing")
	}
	return nil
}

// Rate returns the crowd's rate modulation for Config.RateFn: 1 at
// baseline, Peak at the crowd's height. Use with RateCeil = Peak.
func (fc FlashCrowd) Rate() func(t float64) float64 {
	return func(t float64) float64 {
		switch {
		case t < fc.Start:
			return 1
		case t < fc.Start+fc.RampUp:
			return 1 + (fc.Peak-1)*(t-fc.Start)/fc.RampUp
		case t < fc.Start+fc.RampUp+fc.Hold:
			return fc.Peak
		default:
			if fc.Decay <= 0 {
				return 1
			}
			since := t - fc.Start - fc.RampUp - fc.Hold
			return 1 + (fc.Peak-1)*math.Exp(-since/fc.Decay)
		}
	}
}

// FlashCrowdConfig assembles a complete synthetic flash-crowd workload.
type FlashCrowdConfig struct {
	// Seed makes the trace reproducible.
	Seed uint64
	// Baseline is the steady-state group size the trace orbits; the
	// primed population and the baseline arrival rate both derive from
	// it via Little's law.
	Baseline int
	// Horizon is the trace length in seconds.
	Horizon float64
	// Crowd shapes the burst.
	Crowd FlashCrowd
	// Durations is the membership model (zero value = the paper's
	// two-class model compressed 100x, matching the loadgen default).
	Durations TwoClass
	// Loss assigns per-member loss rates (zero value = paper model with
	// 20% of members on lossy links).
	Loss LossModel
}

// SynthFlashCrowd generates a reproducible flash-crowd membership trace:
// a primed steady-state population plus Poisson arrivals whose rate
// follows the crowd shape. The result round-trips through WriteTrace /
// ReadTrace, so chaos scenarios archive the exact churn they replayed.
func SynthFlashCrowd(cfg FlashCrowdConfig) (*Trace, error) {
	if err := cfg.Crowd.validate(); err != nil {
		return nil, err
	}
	if cfg.Baseline <= 0 {
		return nil, fmt.Errorf("workload: flash crowd baseline %d not positive", cfg.Baseline)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("workload: flash crowd horizon %v not positive", cfg.Horizon)
	}
	if cfg.Durations.Short == nil || cfg.Durations.Long == nil {
		cfg.Durations = PaperDefault().Compressed(100)
	}
	if cfg.Loss == (LossModel{}) {
		cfg.Loss = PaperLossModel(0.2)
	}
	s, err := NewSession(Config{
		Seed:        cfg.Seed,
		ArrivalRate: ArrivalRateForGroupSize(float64(cfg.Baseline), cfg.Durations),
		Durations:   cfg.Durations,
		Loss:        cfg.Loss,
		RateFn:      cfg.Crowd.Rate(),
		RateCeil:    cfg.Crowd.Peak,
	})
	if err != nil {
		return nil, err
	}
	return s.Record(cfg.Baseline, cfg.Horizon), nil
}
