package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func recordTrace(t *testing.T, seed uint64, n int, horizon float64) *Trace {
	t.Helper()
	s, err := NewSession(Config{
		Seed:        seed,
		ArrivalRate: ArrivalRateForGroupSize(float64(n), PaperDefault()),
		Durations:   PaperDefault(),
		Loss:        PaperLossModel(0.2),
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	return s.Record(n, horizon)
}

func TestTraceRoundTrip(t *testing.T) {
	tr := recordTrace(t, 1, 200, 1800)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events %d, want %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
	if len(got.Members) != len(tr.Members) {
		t.Fatalf("members %d, want %d", len(got.Members), len(tr.Members))
	}
	for id, want := range tr.Members {
		if got.Members[id] != want {
			t.Fatalf("member %d mismatch: %+v vs %+v", id, got.Members[id], want)
		}
	}
	if len(got.Primed) != len(tr.Primed) {
		t.Fatalf("primed %d, want %d", len(got.Primed), len(tr.Primed))
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"not-a-trace\n",
		"trace-v1\nx 1 2 3\n",
		"trace-v1\nm 1 1\n",
		"trace-v1\ne 10 1 5\n", // event for unknown member
		"trace-v1\nm 1 1 0 10 0.02 1\ne 10 9 1\n", // bad event kind
		"trace-v1\nm abc 1 0 10 0.02 1\n",
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err=%v, want ErrBadTrace", i, err)
		}
	}
}

func TestTracePrimedConsistency(t *testing.T) {
	tr := recordTrace(t, 2, 100, 600)
	if len(tr.Primed) != 100 {
		t.Fatalf("primed %d, want 100", len(tr.Primed))
	}
	for _, p := range tr.Primed {
		if !p.Primed {
			t.Fatalf("primed member %d not flagged", p.ID)
		}
		if got := tr.Members[p.ID]; got != p {
			t.Fatalf("primed member %d not in member map", p.ID)
		}
	}
}
