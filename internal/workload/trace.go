package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"groupkey/internal/keytree"
)

// Trace bundles everything needed to replay a membership workload exactly:
// the primed initial population, the timestamped event stream, and the
// per-member ground truth. Traces serialize to a line-oriented text format
// so experiments can be archived and re-run bit-for-bit.
type Trace struct {
	Primed  []MemberInfo
	Events  []Event
	Members map[keytree.MemberID]MemberInfo
}

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("workload: malformed trace")

// Record primes the session with n members, generates events up to the
// horizon, and packages the whole run as a Trace.
func (s *Session) Record(n int, horizon float64) *Trace {
	primed := s.Prime(n)
	events := s.Events(horizon)
	return &Trace{Primed: primed, Events: events, Members: s.Members()}
}

// WriteTrace serializes a trace. The format is line-oriented:
//
//	trace-v1
//	m <id> <class> <joinTime> <duration> <lossRate> <primed>
//	e <time> <kind> <member>
//
// Member lines come first (sorted by id), then event lines in time order.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "trace-v1"); err != nil {
		return err
	}
	ids := make([]keytree.MemberID, 0, len(tr.Members))
	for id := range tr.Members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := tr.Members[id]
		primed := 0
		if m.Primed {
			primed = 1
		}
		if _, err := fmt.Fprintf(bw, "m %d %d %g %g %g %d\n",
			m.ID, int(m.Class), m.JoinTime, m.Duration, m.LossRate, primed); err != nil {
			return err
		}
	}
	for _, e := range tr.Events {
		if _, err := fmt.Fprintf(bw, "e %g %d %d\n", e.Time, int(e.Kind), e.Member); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty input", ErrBadTrace)
	}
	if got := strings.TrimSpace(sc.Text()); got != "trace-v1" {
		return nil, fmt.Errorf("%w: unknown header %q", ErrBadTrace, got)
	}
	tr := &Trace{Members: make(map[keytree.MemberID]MemberInfo)}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "m":
			if len(fields) != 7 {
				return nil, fmt.Errorf("%w: line %d: member needs 6 fields", ErrBadTrace, line)
			}
			id, err1 := strconv.ParseUint(fields[1], 10, 64)
			class, err2 := strconv.Atoi(fields[2])
			joinT, err3 := strconv.ParseFloat(fields[3], 64)
			dur, err4 := strconv.ParseFloat(fields[4], 64)
			loss, err5 := strconv.ParseFloat(fields[5], 64)
			primed, err6 := strconv.Atoi(fields[6])
			if err := firstErr(err1, err2, err3, err4, err5, err6); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, line, err)
			}
			info := MemberInfo{
				ID:       keytree.MemberID(id),
				Class:    Class(class),
				JoinTime: joinT,
				Duration: dur,
				LossRate: loss,
				Primed:   primed == 1,
			}
			tr.Members[info.ID] = info
			if info.Primed {
				tr.Primed = append(tr.Primed, info)
			}
		case "e":
			if len(fields) != 4 {
				return nil, fmt.Errorf("%w: line %d: event needs 3 fields", ErrBadTrace, line)
			}
			ts, err1 := strconv.ParseFloat(fields[1], 64)
			kind, err2 := strconv.Atoi(fields[2])
			member, err3 := strconv.ParseUint(fields[3], 10, 64)
			if err := firstErr(err1, err2, err3); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, line, err)
			}
			if EventKind(kind) != EventJoin && EventKind(kind) != EventLeave {
				return nil, fmt.Errorf("%w: line %d: unknown event kind %d", ErrBadTrace, line, kind)
			}
			tr.Events = append(tr.Events, Event{
				Time:   ts,
				Kind:   EventKind(kind),
				Member: keytree.MemberID(member),
			})
		default:
			return nil, fmt.Errorf("%w: line %d: unknown record %q", ErrBadTrace, line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Validate referential integrity: every event references a known member.
	for _, e := range tr.Events {
		if _, ok := tr.Members[e.Member]; !ok {
			return nil, fmt.Errorf("%w: event references unknown member %d", ErrBadTrace, e.Member)
		}
	}
	return tr, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
