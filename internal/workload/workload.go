// Package workload generates the membership dynamics that drive group
// rekeying experiments: Poisson member arrivals with membership durations
// drawn from the paper's two-class model (Section 3.3.1) — a mixture of a
// short-duration and a long-duration exponential — or from a heavy-tailed
// Pareto ("Zipf-like") distribution, matching the MBone measurements of
// Almeroth and Ammar the paper builds on.
//
// A Session produces a timestamped event trace (joins and leaves) plus
// per-member metadata (duration class, packet-loss rate), and the trace can
// be folded into per-period batches for periodic batched rekeying.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"groupkey/internal/keytree"
)

// Class labels a member's duration class in the two-class model.
type Class int

const (
	// ClassShort is Cs: short membership durations (mean Ms).
	ClassShort Class = iota + 1
	// ClassLong is Cl: long membership durations (mean Ml).
	ClassLong
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassShort:
		return "short"
	case ClassLong:
		return "long"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Dist samples membership durations in seconds.
type Dist interface {
	Sample(rng *rand.Rand) float64
	Mean() float64
}

// Exponential is an exponential duration distribution.
type Exponential struct {
	// M is the mean duration in seconds.
	M float64
}

// Sample draws a duration.
func (e Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() * e.M }

// Mean returns the distribution mean.
func (e Exponential) Mean() float64 { return e.M }

// Pareto is a heavy-tailed duration distribution (the "Zipf distribution"
// fit of the MBone measurements): P[T > t] = (Xm/t)^Shape for t ≥ Xm.
// Shape must exceed 1 for the mean to exist.
type Pareto struct {
	Xm    float64 // scale: minimum duration, seconds
	Shape float64 // tail index, > 1
}

// Sample draws a duration by inverse transform.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Xm * math.Pow(u, -1/p.Shape)
}

// Mean returns Xm·shape/(shape−1).
func (p Pareto) Mean() float64 {
	if p.Shape <= 1 {
		return math.Inf(1)
	}
	return p.Xm * p.Shape / (p.Shape - 1)
}

// TwoClass is the paper's membership-duration model: a fraction Alpha of
// joins come from the short class, the rest from the long class.
type TwoClass struct {
	Alpha float64
	Short Dist
	Long  Dist
}

// SampleClass draws a class and a duration for one arriving member.
func (tc TwoClass) SampleClass(rng *rand.Rand) (Class, float64) {
	if rng.Float64() < tc.Alpha {
		return ClassShort, tc.Short.Sample(rng)
	}
	return ClassLong, tc.Long.Sample(rng)
}

// Mean returns the overall mean duration of arriving members.
func (tc TwoClass) Mean() float64 {
	return tc.Alpha*tc.Short.Mean() + (1-tc.Alpha)*tc.Long.Mean()
}

// Scaled divides every sample of an underlying distribution by Factor —
// time compression for load tests that must replay hours of churn in
// seconds without changing the distribution's shape.
type Scaled struct {
	D      Dist
	Factor float64
}

// Sample draws a compressed duration.
func (s Scaled) Sample(rng *rand.Rand) float64 { return s.D.Sample(rng) / s.Factor }

// Mean returns the compressed mean.
func (s Scaled) Mean() float64 { return s.D.Mean() / s.Factor }

// Scale wraps d so durations come out factor times shorter. A factor ≤ 1
// returns d unchanged (including factor 1, which would be a no-op wrapper).
func Scale(d Dist, factor float64) Dist {
	if factor <= 1 {
		return d
	}
	return Scaled{D: d, Factor: factor}
}

// Compressed returns the model with both classes time-compressed by
// factor, preserving Alpha and the short/long shape.
func (tc TwoClass) Compressed(factor float64) TwoClass {
	return TwoClass{
		Alpha: tc.Alpha,
		Short: Scale(tc.Short, factor),
		Long:  Scale(tc.Long, factor),
	}
}

// PaperDefault returns the Table 1 duration model: α=0.8, Ms=3 min,
// Ml=3 h, both exponential.
func PaperDefault() TwoClass {
	return TwoClass{
		Alpha: 0.8,
		Short: Exponential{M: 3 * 60},
		Long:  Exponential{M: 3 * 60 * 60},
	}
}

// MBoneSession returns a two-class model loosely calibrated to the MBone
// session Almeroth and Ammar report (Section 3.1): mean duration ≈ 5 hours
// while the median is only minutes, i.e. most members leave quickly and a
// minority stays very long.
func MBoneSession() TwoClass {
	return TwoClass{
		Alpha: 0.8,
		Short: Exponential{M: 7 * 60},         // short visits, minutes
		Long:  Exponential{M: 24*3600 + 1752}, // tail calibrated so the mix means 5 h
	}
}

// ArrivalRateForGroupSize returns the Poisson arrival rate (members/second)
// that sustains a steady-state group of n members under the given duration
// model, by Little's law: n = λ·E[D].
func ArrivalRateForGroupSize(n float64, d TwoClass) float64 {
	return n / d.Mean()
}

// EventKind distinguishes joins from leaves.
type EventKind int

const (
	// EventJoin is a member arrival.
	EventJoin EventKind = iota + 1
	// EventLeave is a member departure.
	EventLeave
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timestamped membership change.
type Event struct {
	Time   float64 // seconds since session start
	Kind   EventKind
	Member keytree.MemberID
}

// MemberInfo carries the per-member ground truth the experiments need.
type MemberInfo struct {
	ID       keytree.MemberID
	Class    Class
	JoinTime float64 // seconds; 0 and Primed=true for initial members
	Duration float64 // seconds
	LossRate float64 // packet-loss probability of this member's link
	Primed   bool    // true for members present at session start
}

// LossModel assigns per-member packet-loss rates: a fraction HighFraction
// of members experience HighLoss, the rest LowLoss (Section 4.3).
type LossModel struct {
	HighFraction float64
	HighLoss     float64
	LowLoss      float64
}

// PaperLossModel returns the Section 4.3 defaults: 20% loss for the high
// class, 2% for the low class.
func PaperLossModel(highFraction float64) LossModel {
	return LossModel{HighFraction: highFraction, HighLoss: 0.20, LowLoss: 0.02}
}

// Sample assigns a loss rate to one member.
func (lm LossModel) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < lm.HighFraction {
		return lm.HighLoss
	}
	return lm.LowLoss
}

// Config parameterizes a Session.
type Config struct {
	Seed        uint64
	ArrivalRate float64 // Poisson arrivals per second (the base rate)
	Durations   TwoClass
	Loss        LossModel

	// RateFn optionally modulates the arrival rate over time — diurnal
	// audiences, prime-time spikes. The instantaneous rate at time t is
	// ArrivalRate·RateFn(t); values must lie in [0, RateCeil]. nil means a
	// homogeneous Poisson process.
	RateFn func(t float64) float64
	// RateCeil bounds RateFn for the thinning sampler (default 1).
	RateCeil float64
}

// DiurnalRate returns a rate modulation oscillating around 1 with the
// given amplitude (0..1) and period in seconds — peak audience at t=period/4.
// Use with RateCeil = 1+amplitude.
func DiurnalRate(amplitude, period float64) func(float64) float64 {
	return func(t float64) float64 {
		return 1 + amplitude*math.Sin(2*math.Pi*t/period)
	}
}

// Session generates a membership trace. It is not safe for concurrent use.
type Session struct {
	cfg     Config
	rng     *rand.Rand
	nextID  keytree.MemberID
	members map[keytree.MemberID]MemberInfo
	// pending departures of primed members, merged into the trace.
	pending []Event
}

// NewSession creates a trace generator.
func NewSession(cfg Config) (*Session, error) {
	if cfg.ArrivalRate < 0 {
		return nil, fmt.Errorf("workload: negative arrival rate %v", cfg.ArrivalRate)
	}
	if cfg.Durations.Short == nil || cfg.Durations.Long == nil {
		return nil, fmt.Errorf("workload: duration model incomplete")
	}
	if cfg.Durations.Alpha < 0 || cfg.Durations.Alpha > 1 {
		return nil, fmt.Errorf("workload: alpha=%v out of range", cfg.Durations.Alpha)
	}
	return &Session{
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		nextID:  1,
		members: make(map[keytree.MemberID]MemberInfo),
	}, nil
}

// Prime installs n members present at time zero, with class composition
// given by Little's law (class share proportional to α_c·M_c) and residual
// lifetimes drawn memorylessly. It returns their infos and schedules their
// departures into the trace.
func (s *Session) Prime(n int) []MemberInfo {
	tc := s.cfg.Durations
	shortWeight := tc.Alpha * tc.Short.Mean()
	longWeight := (1 - tc.Alpha) * tc.Long.Mean()
	pShort := 0.0
	if shortWeight+longWeight > 0 {
		pShort = shortWeight / (shortWeight + longWeight)
	}
	out := make([]MemberInfo, 0, n)
	for i := 0; i < n; i++ {
		var class Class
		var dur float64
		if s.rng.Float64() < pShort {
			class = ClassShort
			dur = tc.Short.Sample(s.rng)
		} else {
			class = ClassLong
			dur = tc.Long.Sample(s.rng)
		}
		info := MemberInfo{
			ID:       s.nextID,
			Class:    class,
			JoinTime: 0,
			Duration: dur,
			LossRate: s.cfg.Loss.Sample(s.rng),
			Primed:   true,
		}
		s.nextID++
		s.members[info.ID] = info
		s.pending = append(s.pending, Event{Time: dur, Kind: EventLeave, Member: info.ID})
		out = append(out, info)
	}
	return out
}

// Events generates the trace on (0, horizon]: Poisson arrivals, each with a
// sampled duration, plus all departures falling inside the horizon
// (including those of primed members). The returned slice is time-sorted.
func (s *Session) Events(horizon float64) []Event {
	events := make([]Event, 0, len(s.pending))
	for _, e := range s.pending {
		if e.Time <= horizon {
			events = append(events, e)
		}
	}
	if s.cfg.ArrivalRate > 0 {
		// With a RateFn, sample by thinning: candidates at the ceiling rate
		// ArrivalRate·RateCeil, each accepted with probability
		// RateFn(t)/RateCeil.
		ceil := s.cfg.RateCeil
		if ceil <= 0 {
			ceil = 1
		}
		candidateRate := s.cfg.ArrivalRate
		if s.cfg.RateFn != nil {
			candidateRate *= ceil
		}
		t := 0.0
		for {
			t += s.rng.ExpFloat64() / candidateRate
			if t > horizon {
				break
			}
			if s.cfg.RateFn != nil {
				accept := s.cfg.RateFn(t) / ceil
				if accept < 0 || accept > 1 {
					accept = math.Max(0, math.Min(1, accept))
				}
				if s.rng.Float64() >= accept {
					continue
				}
			}
			class, dur := s.cfg.Durations.SampleClass(s.rng)
			info := MemberInfo{
				ID:       s.nextID,
				Class:    class,
				JoinTime: t,
				Duration: dur,
				LossRate: s.cfg.Loss.Sample(s.rng),
			}
			s.nextID++
			s.members[info.ID] = info
			events = append(events, Event{Time: t, Kind: EventJoin, Member: info.ID})
			if end := t + dur; end <= horizon {
				events = append(events, Event{Time: end, Kind: EventLeave, Member: info.ID})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events
}

// Member returns the metadata of a generated member.
func (s *Session) Member(id keytree.MemberID) (MemberInfo, bool) {
	info, ok := s.members[id]
	return info, ok
}

// Members returns metadata for every member the session has generated.
func (s *Session) Members() map[keytree.MemberID]MemberInfo {
	out := make(map[keytree.MemberID]MemberInfo, len(s.members))
	for k, v := range s.members {
		out[k] = v
	}
	return out
}

// PeriodBatches folds a time-sorted event trace into per-period rekey
// batches of length tp, dropping member lifetimes wholly contained in one
// period (they are never admitted — the standard periodic-rekeying rule,
// which also keeps a batch free of join+leave conflicts).
func PeriodBatches(events []Event, tp, horizon float64) []keytree.Batch {
	if tp <= 0 || horizon <= 0 {
		return nil
	}
	n := int(math.Ceil(horizon / tp))
	batches := make([]keytree.Batch, n)
	period := func(t float64) int {
		p := int(t / tp)
		if p >= n {
			p = n - 1
		}
		return p
	}
	joinPeriod := make(map[keytree.MemberID]int)
	for _, e := range events {
		p := period(e.Time)
		switch e.Kind {
		case EventJoin:
			joinPeriod[e.Member] = p
			batches[p].Joins = append(batches[p].Joins, e.Member)
		case EventLeave:
			if jp, ok := joinPeriod[e.Member]; ok && jp == p {
				// Joined and left within one period: never admitted.
				js := batches[p].Joins
				for i, m := range js {
					if m == e.Member {
						batches[p].Joins = append(js[:i], js[i+1:]...)
						break
					}
				}
				delete(joinPeriod, e.Member)
				continue
			}
			batches[p].Leaves = append(batches[p].Leaves, e.Member)
		}
	}
	return batches
}
