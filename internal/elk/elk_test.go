package elk

import (
	"errors"
	"testing"

	"groupkey/internal/keycrypt"
)

// harness pairs the server tree with real member state.
type harness struct {
	t       *testing.T
	tree    *Tree
	members map[MemberID]*Member
}

func newHarness(t *testing.T, seed uint64, n int) *harness {
	t.Helper()
	tree, err := New(DefaultParams(), keycrypt.NewDeterministicReader(seed))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := &harness{t: t, tree: tree, members: make(map[MemberID]*Member)}
	for i := 1; i <= n; i++ {
		h.join(MemberID(i))
	}
	return h
}

// join admits a member server-side and registers its client state. ELK
// joins have zero multicast cost; existing member state stays valid
// because insertion splits a leaf (their paths gain no new nodes... the
// split partner's path does grow, so re-register all member state after
// the initial population — done by registering at the end in tests).
func (h *harness) join(m MemberID) {
	h.t.Helper()
	if err := h.tree.Join(m); err != nil {
		h.t.Fatalf("Join(%d): %v", m, err)
	}
}

// register (re)builds every member's client state from the registration
// channel — used after population, before the departures under test.
func (h *harness) register() {
	h.t.Helper()
	for _, m := range h.tree.Members() {
		path, err := h.tree.Path(m)
		if err != nil {
			h.t.Fatalf("Path(%d): %v", m, err)
		}
		sides, err := h.tree.SidesOf(m)
		if err != nil {
			h.t.Fatalf("SidesOf(%d): %v", m, err)
		}
		mem, err := NewMember(DefaultParams(), m, path, sides)
		if err != nil {
			h.t.Fatalf("NewMember(%d): %v", m, err)
		}
		h.members[m] = mem
	}
}

// leave evicts a member and verifies the full crypto contract.
func (h *harness) leave(m MemberID) *RekeyMessage {
	h.t.Helper()
	departed := h.members[m]
	delete(h.members, m)
	msg, err := h.tree.Leave(m)
	if err != nil {
		h.t.Fatalf("Leave(%d): %v", m, err)
	}
	want, err := h.tree.GroupKey()
	if err != nil {
		h.t.Fatalf("GroupKey: %v", err)
	}
	for id, mem := range h.members {
		if err := mem.Apply(msg); err != nil {
			h.t.Fatalf("member %d Apply: %v", id, err)
		}
		got, ok := mem.GroupKey()
		if !ok || !got.Equal(want) {
			h.t.Fatalf("member %d disagrees on the group key after %d left", id, m)
		}
	}
	if departed != nil {
		departed.Apply(msg) // errors expected; what matters is the key
		if got, ok := departed.GroupKey(); ok && got.Equal(want) {
			h.t.Fatalf("departed member %d computed the new group key", m)
		}
	}
	return msg
}

func TestELKDepartureRekeysViaHints(t *testing.T) {
	h := newHarness(t, 1, 16)
	h.register()
	msg := h.leave(7)
	if len(msg.Hints) == 0 {
		t.Fatal("no hints emitted")
	}
	if len(msg.LeafWraps) != 1 {
		t.Fatalf("LeafWraps=%d, want 1 (the refreshed leaf)", len(msg.LeafWraps))
	}
	// Receivers actually brute-forced something.
	worked := false
	for _, mem := range h.members {
		if mem.BruteForceSteps > 0 {
			worked = true
		}
	}
	if !worked {
		t.Fatal("no member spent brute-force CPU — hints were not exercised")
	}
}

func TestELKSequentialDepartures(t *testing.T) {
	h := newHarness(t, 2, 32)
	h.register()
	for _, m := range []MemberID{1, 16, 32, 8, 9} {
		h.leave(m)
	}
	if h.tree.Size() != 27 {
		t.Fatalf("size=%d, want 27", h.tree.Size())
	}
}

func TestELKBandwidthBelowLKH(t *testing.T) {
	// The point of ELK: hint bits per updated node instead of two wrapped
	// keys. Compare bits on the wire for one departure from N=256 against
	// binary-LKH's 2·(h−1) wraps.
	h := newHarness(t, 3, 256)
	h.register()
	msg := h.leave(100)
	p := DefaultParams()
	elkBits := msg.BitsOnWire(p)
	lkhBits := 2 * 7 * keycrypt.WrappedSize * 8 // 2(h-1) wraps, h=8
	if elkBits >= lkhBits {
		t.Fatalf("ELK %d bits not below LKH %d bits", elkBits, lkhBits)
	}
}

func TestELKJoinIsFreeMulticast(t *testing.T) {
	tree, err := New(DefaultParams(), keycrypt.NewDeterministicReader(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := tree.Join(MemberID(i)); err != nil {
			t.Fatalf("Join(%d): %v", i, err)
		}
	}
	// No broadcast API even exists for joins: the scheme's claim.
	if tree.Size() != 20 {
		t.Fatalf("size=%d", tree.Size())
	}
}

func TestELKValidation(t *testing.T) {
	if _, err := New(Params{CBits: 4, HintBits: 2}, nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("tiny cbits: err=%v", err)
	}
	if _, err := New(Params{CBits: 32, HintBits: 0}, nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("2^32 brute force accepted: err=%v", err)
	}
	tree, err := New(DefaultParams(), keycrypt.NewDeterministicReader(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Leave(9); !errors.Is(err, ErrMemberUnknown) {
		t.Errorf("unknown leave: err=%v", err)
	}
	if err := tree.Join(0); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero member: err=%v", err)
	}
	tree.Join(1)
	if err := tree.Join(1); !errors.Is(err, ErrMemberExists) {
		t.Errorf("duplicate join: err=%v", err)
	}
}

func TestELKCorruptedHintDetected(t *testing.T) {
	h := newHarness(t, 6, 8)
	h.register()
	victim := h.members[2]
	delete(h.members, 2) // keep it from the harness's own verification
	msg, err := h.tree.Leave(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Hints) == 0 {
		t.Fatal("no hints")
	}
	msg.Hints[len(msg.Hints)-1].Verifier ^= 1
	if err := victim.Apply(msg); !errors.Is(err, ErrHintMismatch) {
		t.Fatalf("corrupted hint: err=%v, want ErrHintMismatch", err)
	}
}

func TestELKLastMember(t *testing.T) {
	h := newHarness(t, 7, 2)
	h.register()
	h.leave(1)
	if h.tree.Size() != 1 {
		t.Fatalf("size=%d", h.tree.Size())
	}
	// Singleton: root is the remaining leaf; no broadcast needed.
	msg, err := h.tree.Leave(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Hints) != 0 || h.tree.Size() != 0 {
		t.Fatalf("emptying: hints=%d size=%d", len(msg.Hints), h.tree.Size())
	}
}
