// Package elk implements the core of ELK (Perrig, Song, Tygar — IEEE S&P
// 2001), the last of the hierarchical rekeying schemes the paper's survey
// names (Section 2.1.1: "Other approaches for scalable rekeying such as
// one-way function trees and ELK also involve the use of a hierarchical
// key tree").
//
// ELK's two ideas, both implemented here:
//
//  1. Contribution-based key updates. When node v's key must change, the
//     new key is computed from pseudo-random contributions of BOTH child
//     keys: K'(v) = H(C_L ‖ C_R) with C_side = PRF(K(side child), K(v)).
//     A member under the left child computes C_L itself and only needs
//     C_R — half the secret material of an LKH child wrap.
//
//  2. Hints. Instead of sending the needed contribution whole, the server
//     sends its first HintBits bits plus a short verifier of the resulting
//     key; the member brute-forces the remaining CBits−HintBits bits,
//     trading receiver CPU for multicast bandwidth. This is the knob that
//     made ELK's rekey messages smaller than LKH's.
//
// The implementation is a binary key tree with departure rekeying; the
// paper's own optimizations (two-partition organization) would apply on
// top of it exactly as they do for LKH and OFT.
package elk

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"groupkey/internal/keycrypt"
)

// Scheme errors.
var (
	ErrMemberExists  = errors.New("elk: member already present")
	ErrMemberUnknown = errors.New("elk: no such member")
	ErrBadParams     = errors.New("elk: invalid parameters")
	ErrHintMismatch  = errors.New("elk: hint brute force failed (wrong keys or corrupted hint)")
)

// Params tunes the bandwidth/CPU trade-off.
type Params struct {
	// CBits is the contribution entropy in bits (the paper's n1+n2).
	CBits int
	// HintBits is how many contribution bits the server transmits; the
	// receiver brute-forces the remaining CBits−HintBits.
	HintBits int
}

// DefaultParams uses 20-bit contributions with 8 transmitted bits: 4096
// brute-force candidates per updated key — milliseconds on a receiver.
//
// Security note (inherent to ELK, not this implementation): an outsider
// can attack a hint by brute-forcing BOTH contributions jointly, a
// 2^(2·CBits−2·HintBits) search. The original paper sizes the
// contributions so this is just out of reach for the key's lifetime —
// ELK keys are short-lived by design. These defaults favor test speed;
// production deployments must raise CBits accordingly.
func DefaultParams() Params { return Params{CBits: 20, HintBits: 8} }

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.CBits < 8 || p.CBits > 32 || p.HintBits < 0 || p.HintBits > p.CBits {
		return fmt.Errorf("%w: cbits=%d hintbits=%d", ErrBadParams, p.CBits, p.HintBits)
	}
	if p.CBits-p.HintBits > 20 {
		return fmt.Errorf("%w: brute-force space 2^%d too large", ErrBadParams, p.CBits-p.HintBits)
	}
	return nil
}

// MemberID identifies a member (nonzero).
type MemberID uint64

// prf is the scheme's keyed pseudo-random function.
func prf(key []byte, parts ...[]byte) [32]byte {
	mac := hmac.New(sha256.New, key)
	for _, p := range parts {
		mac.Write(p)
	}
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// contribution computes a CBits-bit child contribution:
// PRF(childKey, oldParentKey ‖ side).
func contribution(p Params, child, oldParent keycrypt.Key, side byte) uint32 {
	d := prf(child.Bytes(), oldParent.Bytes(), []byte{side})
	return binary.BigEndian.Uint32(d[:4]) & mask(p.CBits)
}

func mask(bits int) uint32 {
	if bits >= 32 {
		return ^uint32(0)
	}
	return 1<<uint(bits) - 1
}

// mixKey derives the new node key from the two contributions and the old
// key's identity (ID and next version ride along so all parties agree).
func mixKey(old keycrypt.Key, cl, cr uint32) keycrypt.Key {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:4], cl)
	binary.BigEndian.PutUint32(buf[4:8], cr)
	d := prf(old.Bytes(), buf[:], []byte("elk-mix"))
	k, err := keycrypt.NewKey(old.ID, old.Version+1, d[:])
	if err != nil {
		panic("elk: digest size mismatch") // impossible
	}
	return k
}

// verifier is the short check value receivers use to confirm a brute-forced
// key (8 bytes — the paper's key verification).
func verifier(k keycrypt.Key) uint64 {
	d := prf(k.Bytes(), []byte("elk-verify"))
	return binary.BigEndian.Uint64(d[:8])
}

// Hint is the per-updated-node rekey message: which node, the transmitted
// contribution bits for each side, and the verifier of the new key.
// Receivers on the left side know C_L and brute-force C_R from RHint (and
// vice versa). Size on the wire: 2·HintBits bits + 64 + node id — far
// below two 32-byte wrapped keys.
type Hint struct {
	Node     keycrypt.KeyID
	LHint    uint32 // first HintBits bits of C_L
	RHint    uint32 // first HintBits bits of C_R
	Verifier uint64
}

// RekeyMessage is the broadcast for one departure.
type RekeyMessage struct {
	Hints []Hint
	// LeafWraps bootstrap the members whose sibling leaf departed: the
	// refreshed sibling key cannot be hint-derived (the departed member
	// knew everything a hint assumes), so it is wrapped conventionally.
	LeafWraps []keycrypt.WrappedKey
	// Removed lists interior nodes spliced out of the tree by this
	// departure; members whose path contains one contract their path
	// accordingly before processing hints.
	Removed []keycrypt.KeyID
}

// BitsOnWire estimates the multicast payload size in bits — ELK's metric.
func (m *RekeyMessage) BitsOnWire(p Params) int {
	perHint := 2*p.HintBits + 64 + 64 // hints + verifier + node id
	return len(m.Hints)*perHint + len(m.LeafWraps)*keycrypt.WrappedSize*8
}

type node struct {
	key         keycrypt.Key
	parent      *node
	left, right *node
	member      MemberID
	leaves      int
}

func (n *node) isLeaf() bool { return n.left == nil && n.right == nil }

// Tree is the server-side ELK key tree. Not safe for concurrent use.
type Tree struct {
	params Params
	root   *node
	leaves map[MemberID]*node
	gen    keycrypt.Generator
	nextID keycrypt.KeyID
}

// New creates an empty ELK tree. rng nil means crypto/rand.
func New(params Params, rng io.Reader) (*Tree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Tree{
		params: params,
		leaves: make(map[MemberID]*node),
		gen:    keycrypt.Generator{Rand: rng},
		nextID: 1,
	}, nil
}

// Size returns the member count.
func (t *Tree) Size() int { return len(t.leaves) }

// GroupKey returns the root key.
func (t *Tree) GroupKey() (keycrypt.Key, error) {
	if t.root == nil {
		return keycrypt.Key{}, fmt.Errorf("%w: empty tree", ErrMemberUnknown)
	}
	return t.root.key, nil
}

// Members lists member IDs ascending.
func (t *Tree) Members() []MemberID {
	out := make([]MemberID, 0, len(t.leaves))
	for m := range t.leaves {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Path returns the member's keys, leaf first, root last — handed over the
// registration channel at join.
func (t *Tree) Path(m MemberID) ([]keycrypt.Key, error) {
	leaf, ok := t.leaves[m]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrMemberUnknown, m)
	}
	var out []keycrypt.Key
	for n := leaf; n != nil; n = n.parent {
		out = append(out, n.key)
	}
	return out, nil
}

// Join admits a member (balanced insertion). ELK joins need no broadcast
// at all in the full protocol (keys advance by a timed one-way refresh);
// here the server simply hands the joiner its path, which is the part the
// paper's comparison cares about: join cost 0 multicast keys.
func (t *Tree) Join(m MemberID) error {
	if m == 0 {
		return fmt.Errorf("%w: zero id", ErrBadParams)
	}
	if _, dup := t.leaves[m]; dup {
		return fmt.Errorf("%w: %d", ErrMemberExists, m)
	}
	key, err := t.freshKey()
	if err != nil {
		return err
	}
	leaf := &node{key: key, member: m, leaves: 1}
	t.leaves[m] = leaf
	if t.root == nil {
		t.root = leaf
		return nil
	}
	n := t.root
	for !n.isLeaf() {
		if n.left.leaves <= n.right.leaves {
			n = n.left
		} else {
			n = n.right
		}
	}
	interiorKey, err := t.freshKey()
	if err != nil {
		return err
	}
	interior := &node{key: interiorKey, parent: n.parent, left: n, right: leaf, leaves: n.leaves + 1}
	if n.parent == nil {
		t.root = interior
	} else if n.parent.left == n {
		n.parent.left = interior
	} else {
		n.parent.right = interior
	}
	n.parent = interior
	leaf.parent = interior
	for g := interior.parent; g != nil; g = g.parent {
		g.leaves++
	}
	return nil
}

func (t *Tree) freshKey() (keycrypt.Key, error) {
	id := t.nextID
	t.nextID++
	return t.gen.New(id, 0)
}

// Leave evicts a member and produces the hint-based rekey broadcast.
func (t *Tree) Leave(m MemberID) (*RekeyMessage, error) {
	leaf, ok := t.leaves[m]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrMemberUnknown, m)
	}
	delete(t.leaves, m)
	msg := &RekeyMessage{}

	parent := leaf.parent
	if parent == nil {
		t.root = nil
		return msg, nil
	}
	// Splice: promote the sibling.
	sibling := parent.left
	if sibling == leaf {
		sibling = parent.right
	}
	grand := parent.parent
	sibling.parent = grand
	if grand == nil {
		t.root = sibling
	} else if grand.left == parent {
		grand.left = sibling
	} else {
		grand.right = sibling
	}
	parent.parent, parent.left, parent.right = nil, nil, nil
	leaf.parent = nil
	msg.Removed = append(msg.Removed, parent.key.ID)
	for g := grand; g != nil; g = g.parent {
		g.leaves--
	}
	if t.root.isLeaf() {
		return msg, nil // singleton group: nothing to broadcast
	}

	// The departed member knew every key on its path, including the keys
	// its hints would be derived from — hints alone cannot lock it out.
	// ELK therefore refreshes one leaf it never knew (the nearest leaf of
	// the promoted subtree), delivered wrapped under that leaf's old key,
	// and drives every ancestor update from contributions involving it.
	fresh := shallowLeaf(sibling)
	oldLeafKey := fresh.key
	next, err := t.gen.New(oldLeafKey.ID, oldLeafKey.Version+1)
	if err != nil {
		return nil, err
	}
	fresh.key = next
	w, err := keycrypt.Wrap(next, oldLeafKey, t.gen.Rand)
	if err != nil {
		return nil, err
	}
	msg.LeafWraps = append(msg.LeafWraps, w)

	// Update every ancestor of the refreshed leaf bottom-up with
	// contribution mixing, emitting one hint per node.
	for v := fresh.parent; v != nil; v = v.parent {
		old := v.key
		cl := contribution(t.params, v.left.key, old, 'L')
		cr := contribution(t.params, v.right.key, old, 'R')
		v.key = mixKey(old, cl, cr)
		msg.Hints = append(msg.Hints, Hint{
			Node:     old.ID,
			LHint:    cl >> uint(t.params.CBits-t.params.HintBits),
			RHint:    cr >> uint(t.params.CBits-t.params.HintBits),
			Verifier: verifier(v.key),
		})
	}
	return msg, nil
}

func shallowLeaf(n *node) *node {
	queue := []*node{n}
	for len(queue) > 0 {
		head := queue[0]
		queue = queue[1:]
		if head.isLeaf() {
			return head
		}
		queue = append(queue, head.left, head.right)
	}
	panic("elk: subtree without leaves")
}

// Member is the receiver side: it holds its path keys and processes hint
// broadcasts by recomputing its own side's contribution and brute-forcing
// the other side's.
type Member struct {
	params Params
	id     MemberID
	// pathKeys maps node key ID → current key, leaf upward.
	pathKeys map[keycrypt.KeyID]keycrypt.Key
	// order lists the path node IDs leaf→root; sides[i] is true when the
	// member sits under the LEFT child of order[i].
	order []keycrypt.KeyID
	sides []bool
	// BruteForceSteps counts PRF evaluations spent on hints — the CPU the
	// bandwidth saving costs.
	BruteForceSteps int
}

// NewMember bootstraps a receiver from its registration material: the path
// keys (leaf first) and, for each interior path node, whether the member
// hangs under its left child.
func NewMember(params Params, id MemberID, path []keycrypt.Key, underLeft []bool) (*Member, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(path) == 0 || len(underLeft) != len(path)-1 {
		return nil, fmt.Errorf("%w: path %d sides %d", ErrBadParams, len(path), len(underLeft))
	}
	m := &Member{params: params, id: id, pathKeys: make(map[keycrypt.KeyID]keycrypt.Key, len(path))}
	for _, k := range path {
		m.pathKeys[k.ID] = k
		m.order = append(m.order, k.ID)
	}
	m.sides = append([]bool(nil), underLeft...)
	return m, nil
}

// SidesOf computes the underLeft vector for a member — a server-side
// helper for registration.
func (t *Tree) SidesOf(m MemberID) ([]bool, error) {
	leaf, ok := t.leaves[m]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrMemberUnknown, m)
	}
	var out []bool
	for n := leaf; n.parent != nil; n = n.parent {
		out = append(out, n.parent.left == n)
	}
	return out, nil
}

// GroupKey returns the member's current root key.
func (m *Member) GroupKey() (keycrypt.Key, bool) {
	k, ok := m.pathKeys[m.order[len(m.order)-1]]
	return k, ok
}

// Apply processes a rekey broadcast: structural contractions first, then
// leaf wraps (in case this member owns the refreshed leaf), then hints
// bottom-up.
func (m *Member) Apply(msg *RekeyMessage) error {
	for _, removed := range msg.Removed {
		idx := -1
		for i, id := range m.order {
			if id == removed {
				idx = i
				break
			}
		}
		if idx <= 0 {
			continue // not on this path (or the member's own leaf: impossible)
		}
		// order[idx] disappears: order[idx-1] now hangs under order[idx+1]
		// on the side order[idx] occupied (sides[idx] slides down into the
		// vacated relation; the child→removed relation sides[idx-1] dies).
		m.order = append(m.order[:idx], m.order[idx+1:]...)
		m.sides = append(m.sides[:idx-1], m.sides[idx:]...)
		delete(m.pathKeys, removed)
	}
	for _, w := range msg.LeafWraps {
		cur, ok := m.pathKeys[w.WrapperID]
		if !ok || cur.Version != w.WrapperVersion {
			continue
		}
		got, err := keycrypt.Unwrap(w, cur)
		if err != nil {
			continue
		}
		m.pathKeys[got.ID] = got
	}
	for _, h := range msg.Hints {
		idx := -1
		for i, id := range m.order {
			if id == h.Node {
				idx = i
				break
			}
		}
		if idx <= 0 {
			continue // not on this member's path (or is the leaf itself)
		}
		old := m.pathKeys[h.Node]
		childID := m.order[idx-1]
		child := m.pathKeys[childID]
		underLeft := m.sides[idx-1]

		// Compute our side's contribution; brute-force the other's.
		var mine uint32
		var mineHint, otherHint uint32
		if underLeft {
			mine = contribution(m.params, child, old, 'L')
			mineHint, otherHint = h.LHint, h.RHint
		} else {
			mine = contribution(m.params, child, old, 'R')
			mineHint, otherHint = h.RHint, h.LHint
		}
		if mine>>uint(m.params.CBits-m.params.HintBits) != mineHint {
			return fmt.Errorf("%w: own-side hint mismatch at %v", ErrHintMismatch, h.Node)
		}
		unknownBits := uint(m.params.CBits - m.params.HintBits)
		base := otherHint << unknownBits
		found := false
		for candidate := uint32(0); candidate < 1<<unknownBits; candidate++ {
			other := base | candidate
			var cl, cr uint32
			if underLeft {
				cl, cr = mine, other
			} else {
				cl, cr = other, mine
			}
			trial := mixKey(old, cl, cr)
			m.BruteForceSteps++
			if verifier(trial) == h.Verifier {
				m.pathKeys[h.Node] = trial
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: node %v", ErrHintMismatch, h.Node)
		}
	}
	return nil
}
