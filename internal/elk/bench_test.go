package elk

import (
	"testing"

	"groupkey/internal/keycrypt"
)

func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	tree, err := New(DefaultParams(), keycrypt.NewDeterministicReader(uint64(n)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := tree.Join(MemberID(i)); err != nil {
			b.Fatal(err)
		}
	}
	return tree
}

func BenchmarkLeave(b *testing.B) {
	const n = 4096
	tree := benchTree(b, n)
	members := make([]MemberID, n)
	for i := range members {
		members[i] = MemberID(i + 1)
	}
	next := MemberID(n + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % n
		if _, err := tree.Leave(members[slot]); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := tree.Join(next); err != nil {
			b.Fatal(err)
		}
		members[slot] = next
		next++
		b.StartTimer()
	}
}

// BenchmarkMemberApply measures the receiver-side brute force — the CPU
// cost ELK trades its bandwidth saving for.
func BenchmarkMemberApply(b *testing.B) {
	tree := benchTree(b, 1024)
	path, err := tree.Path(512)
	if err != nil {
		b.Fatal(err)
	}
	sides, err := tree.SidesOf(512)
	if err != nil {
		b.Fatal(err)
	}
	mem, err := NewMember(DefaultParams(), 512, path, sides)
	if err != nil {
		b.Fatal(err)
	}
	msg, err := tree.Leave(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-create the member each round so the brute force re-runs.
		b.StopTimer()
		clone, err := NewMember(DefaultParams(), 512, path, sides)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := clone.Apply(msg); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(clone.BruteForceSteps), "prf-evals")
		}
	}
	_ = mem
}
