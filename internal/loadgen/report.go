package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// ReportFormatVersion is the schema version EncodeReport stamps.
// DecodeReport accepts versions 1..ReportFormatVersion: version 2 added
// the scenario/region labels and the embedded SLO verdict, all optional.
const ReportFormatVersion = 2

// SLO is a per-run service-level gate. Counter limits of -1 disable that
// axis; MaxSpreadP99 <= 0 disables the spread axis. The chaos harness
// gates every scenario on zero protocol errors plus scenario-specific
// spread and missed-epoch ceilings.
type SLO struct {
	// MaxProtocolErrors caps protocol_errors (-1 = ungated).
	MaxProtocolErrors int64 `json:"max_protocol_errors"`
	// MaxMissedRekeys caps missed_rekeys (-1 = ungated).
	MaxMissedRekeys int64 `json:"max_missed_rekeys"`
	// MaxSpreadP99 caps rekey_spread.p99_seconds (<= 0 = ungated).
	MaxSpreadP99 float64 `json:"max_spread_p99_seconds,omitempty"`
}

// Check evaluates a report against the gate, returning one human-readable
// violation per breached limit (empty = the run met its SLO).
func (s SLO) Check(r *Report) []string {
	var v []string
	if s.MaxProtocolErrors >= 0 && r.ProtocolErrors > uint64(s.MaxProtocolErrors) {
		v = append(v, fmt.Sprintf("protocol_errors %d > %d", r.ProtocolErrors, s.MaxProtocolErrors))
	}
	if s.MaxMissedRekeys >= 0 && r.MissedRekeys > uint64(s.MaxMissedRekeys) {
		v = append(v, fmt.Sprintf("missed_rekeys %d > %d", r.MissedRekeys, s.MaxMissedRekeys))
	}
	if s.MaxSpreadP99 > 0 && r.RekeySpread.P99 > s.MaxSpreadP99 {
		v = append(v, fmt.Sprintf("rekey_spread p99 %.4fs > %.4fs", r.RekeySpread.P99, s.MaxSpreadP99))
	}
	return v
}

// SLOResult records the gate a run was evaluated against and the verdict,
// embedded in the report so a failing artifact is self-describing.
type SLOResult struct {
	SLO        SLO      `json:"slo"`
	Passed     bool     `json:"passed"`
	Violations []string `json:"violations,omitempty"`
}

// LatencySummary condenses one latency histogram for the report.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

// Report is the machine-readable outcome of one load/soak run — the
// SOAK_report.json artifact CI archives and gates on.
type Report struct {
	FormatVersion   int     `json:"format_version"`
	Addr            string  `json:"addr"`
	Members         int     `json:"members"`
	Groups          int     `json:"groups"`
	DurationSeconds float64 `json:"duration_seconds"`
	Seed            uint64  `json:"seed"`
	// Scenario and Region label the chaos scenario and WAN region this
	// fleet ran as (empty outside the chaos harness), so a matrix of
	// SOAK_report.json artifacts stays attributable after upload.
	Scenario string `json:"scenario,omitempty"`
	Region   string `json:"region,omitempty"`
	// FaultPlanHash pins the dst fault plan (if any) that shaped the
	// environment this soak ran under, so an anomaly here can be handed
	// straight to `dstrun -replay`.
	FaultPlanHash string `json:"fault_plan_hash,omitempty"`

	Joins          uint64 `json:"joins"`
	JoinsDeferred  uint64 `json:"joins_deferred"`
	JoinErrors     uint64 `json:"join_errors"`
	Leaves         uint64 `json:"leaves"`
	Disconnects    uint64 `json:"disconnects"`
	Resumes        uint64 `json:"resumes"`
	ResumeFailures uint64 `json:"resume_failures"`

	RekeysSeen   uint64 `json:"rekeys_seen"`
	FinalEpoch   uint64 `json:"final_epoch"`
	MissedRekeys uint64 `json:"missed_rekeys"`

	ProtocolErrors uint64 `json:"protocol_errors"`
	BadSignatures  uint64 `json:"bad_signatures"`
	Undecryptable  uint64 `json:"undecryptable"`

	PeakActive int `json:"peak_active"`

	JoinLatency LatencySummary `json:"join_latency"`
	RekeySpread LatencySummary `json:"rekey_spread"`

	// SLOResult is present when the run was gated (see SLO.Check).
	SLOResult *SLOResult `json:"slo_result,omitempty"`

	ErrorSamples []string `json:"error_samples,omitempty"`
}

// Gate evaluates the SLO, records the verdict in the report, and reports
// whether the run passed.
func (r *Report) Gate(s SLO) bool {
	violations := s.Check(r)
	r.SLOResult = &SLOResult{SLO: s, Passed: len(violations) == 0, Violations: violations}
	return r.SLOResult.Passed
}

// validate enforces the invariants both encode and decode rely on, so a
// corrupted or hand-edited report fails loudly instead of gating CI on
// garbage.
func (r *Report) validate() error {
	if r.FormatVersion < 1 || r.FormatVersion > ReportFormatVersion {
		return fmt.Errorf("loadgen: report format version %d, want 1..%d", r.FormatVersion, ReportFormatVersion)
	}
	if r.Members < 0 {
		return fmt.Errorf("loadgen: negative members %d", r.Members)
	}
	if r.Groups < 0 {
		return fmt.Errorf("loadgen: negative groups %d", r.Groups)
	}
	if r.PeakActive < 0 {
		return fmt.Errorf("loadgen: negative peak_active %d", r.PeakActive)
	}
	if !(r.DurationSeconds >= 0) || math.IsInf(r.DurationSeconds, 0) {
		return fmt.Errorf("loadgen: bad duration_seconds %v", r.DurationSeconds)
	}
	if r.ProtocolErrors < r.BadSignatures+r.Undecryptable {
		return fmt.Errorf("loadgen: protocol_errors %d below its components %d+%d",
			r.ProtocolErrors, r.BadSignatures, r.Undecryptable)
	}
	if len(r.ErrorSamples) > maxErrorSamples {
		return fmt.Errorf("loadgen: %d error samples exceeds cap %d", len(r.ErrorSamples), maxErrorSamples)
	}
	if res := r.SLOResult; res != nil {
		if res.Passed != (len(res.Violations) == 0) {
			return fmt.Errorf("loadgen: slo_result passed=%v with %d violations", res.Passed, len(res.Violations))
		}
	}
	for _, s := range []struct {
		name string
		ls   LatencySummary
	}{{"join_latency", r.JoinLatency}, {"rekey_spread", r.RekeySpread}} {
		for _, v := range []float64{s.ls.Mean, s.ls.P50, s.ls.P95, s.ls.P99, s.ls.Max} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("loadgen: %s has non-finite or negative quantile %v", s.name, v)
			}
		}
	}
	return nil
}

// EncodeReport serializes a report as indented JSON.
func EncodeReport(r *Report) ([]byte, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeReport parses and validates a report produced by EncodeReport.
// Unknown fields are rejected so schema drift is caught at the consumer.
func DecodeReport(b []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("loadgen: decoding report: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("loadgen: trailing data after report")
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
