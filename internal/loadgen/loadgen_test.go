package loadgen

import (
	"context"
	"net"
	"testing"
	"time"

	"groupkey/internal/core"
	"groupkey/internal/keycrypt"
	"groupkey/internal/server"
	"groupkey/internal/workload"
)

// startServer brings up an in-process key server with a fast rekey ticker
// — the loadgen only ever sees the wire protocol, same as against a live
// keyserverd.
func startServer(t *testing.T, policy *server.OverloadPolicy, period time.Duration) *server.Server {
	t.Helper()
	scheme, err := core.NewOneTree(core.WithRand(keycrypt.NewDeterministicReader(7)))
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(scheme, nil)
	if policy != nil {
		s.SetOverloadPolicy(*policy)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	s.Serve(ln)
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.RekeyNow()
			}
		}
	}()
	t.Cleanup(func() {
		close(stop)
		s.Close()
	})
	return s
}

func TestSoakSmallGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	s := startServer(t, nil, 30*time.Millisecond)
	r := New(Config{
		Addr:     s.Addr().String(),
		Members:  16,
		Duration: 2 * time.Second,
		Seed:     1,
		// Aggressive compression so every slot churns several sessions.
		Churn:       workload.PaperDefault().Compressed(1000),
		MinStay:     50 * time.Millisecond,
		JoinTimeout: 5 * time.Second,
	})
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Joins < uint64(16) {
		t.Fatalf("expected every slot to join at least once, got %d joins", rep.Joins)
	}
	if rep.Leaves == 0 {
		t.Fatal("no session ever left: churn did not happen")
	}
	if rep.ProtocolErrors != 0 {
		t.Fatalf("protocol errors against a healthy server: %d (%v)", rep.ProtocolErrors, rep.ErrorSamples)
	}
	if rep.RekeysSeen == 0 || rep.FinalEpoch == 0 {
		t.Fatalf("no rekeys observed: seen=%d final=%d", rep.RekeysSeen, rep.FinalEpoch)
	}
	if rep.JoinLatency.Count != rep.Joins {
		t.Fatalf("join latency count %d != joins %d", rep.JoinLatency.Count, rep.Joins)
	}
	if rep.PeakActive == 0 || rep.PeakActive > 16 {
		t.Fatalf("implausible peak active %d", rep.PeakActive)
	}
	// The report must survive its own wire format.
	b, err := EncodeReport(rep)
	if err != nil {
		t.Fatalf("EncodeReport: %v", err)
	}
	if _, err := DecodeReport(b); err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
}

func TestSoakHonorsAdmissionDeferrals(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	policy := server.DefaultOverloadPolicy()
	policy.JoinRate = 4
	policy.JoinBurst = 1
	policy.RetryFloor = 50 * time.Millisecond
	s := startServer(t, &policy, 30*time.Millisecond)
	r := New(Config{
		Addr:        s.Addr().String(),
		Members:     8,
		Duration:    2 * time.Second,
		Seed:        2,
		Churn:       workload.PaperDefault().Compressed(200),
		MinStay:     200 * time.Millisecond,
		JoinTimeout: 5 * time.Second,
	})
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Eight slots racing a 1-token bucket: most first attempts defer, and
	// every deferral must be retried into admission, not an error.
	if rep.JoinsDeferred == 0 {
		t.Fatal("expected admission deferrals under a tight join rate")
	}
	if rep.Joins == 0 {
		t.Fatal("no slot was ever admitted")
	}
	if rep.ProtocolErrors != 0 {
		t.Fatalf("deferrals must not count as protocol errors: %d (%v)", rep.ProtocolErrors, rep.ErrorSamples)
	}
}
