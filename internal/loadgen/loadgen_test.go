package loadgen

import (
	"context"
	"net"
	"testing"
	"time"

	"groupkey/internal/core"
	"groupkey/internal/keycrypt"
	"groupkey/internal/server"
	"groupkey/internal/store"
	"groupkey/internal/wire"
	"groupkey/internal/workload"
)

// startServer brings up an in-process key server with a fast rekey ticker
// — the loadgen only ever sees the wire protocol, same as against a live
// keyserverd.
func startServer(t *testing.T, policy *server.OverloadPolicy, period time.Duration) *server.Server {
	t.Helper()
	scheme, err := core.NewOneTree(core.WithRand(keycrypt.NewDeterministicReader(7)))
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(scheme, nil)
	if policy != nil {
		s.SetOverloadPolicy(*policy)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	s.Serve(ln)
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.RekeyNow()
			}
		}
	}()
	t.Cleanup(func() {
		close(stop)
		s.Close()
	})
	return s
}

func TestSoakSmallGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	s := startServer(t, nil, 30*time.Millisecond)
	r := New(Config{
		Addr:     s.Addr().String(),
		Members:  16,
		Duration: 2 * time.Second,
		Seed:     1,
		// Aggressive compression so every slot churns several sessions.
		Churn:       workload.PaperDefault().Compressed(1000),
		MinStay:     50 * time.Millisecond,
		JoinTimeout: 5 * time.Second,
	})
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Joins < uint64(16) {
		t.Fatalf("expected every slot to join at least once, got %d joins", rep.Joins)
	}
	if rep.Leaves == 0 {
		t.Fatal("no session ever left: churn did not happen")
	}
	if rep.ProtocolErrors != 0 {
		t.Fatalf("protocol errors against a healthy server: %d (%v)", rep.ProtocolErrors, rep.ErrorSamples)
	}
	if rep.RekeysSeen == 0 || rep.FinalEpoch == 0 {
		t.Fatalf("no rekeys observed: seen=%d final=%d", rep.RekeysSeen, rep.FinalEpoch)
	}
	if rep.JoinLatency.Count != rep.Joins {
		t.Fatalf("join latency count %d != joins %d", rep.JoinLatency.Count, rep.Joins)
	}
	if rep.PeakActive == 0 || rep.PeakActive > 16 {
		t.Fatalf("implausible peak active %d", rep.PeakActive)
	}
	// The report must survive its own wire format.
	b, err := EncodeReport(rep)
	if err != nil {
		t.Fatalf("EncodeReport: %v", err)
	}
	if _, err := DecodeReport(b); err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
}

func TestSoakHonorsAdmissionDeferrals(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	policy := server.DefaultOverloadPolicy()
	policy.JoinRate = 4
	policy.JoinBurst = 1
	policy.RetryFloor = 50 * time.Millisecond
	s := startServer(t, &policy, 30*time.Millisecond)
	r := New(Config{
		Addr:        s.Addr().String(),
		Members:     8,
		Duration:    2 * time.Second,
		Seed:        2,
		Churn:       workload.PaperDefault().Compressed(200),
		MinStay:     200 * time.Millisecond,
		JoinTimeout: 5 * time.Second,
	})
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Eight slots racing a 1-token bucket: most first attempts defer, and
	// every deferral must be retried into admission, not an error.
	if rep.JoinsDeferred == 0 {
		t.Fatal("expected admission deferrals under a tight join rate")
	}
	if rep.Joins == 0 {
		t.Fatal("no slot was ever admitted")
	}
	if rep.ProtocolErrors != 0 {
		t.Fatalf("deferrals must not count as protocol errors: %d (%v)", rep.ProtocolErrors, rep.ErrorSamples)
	}
}

// startRegistry brings up an in-process multi-group host: one OneTree per
// group behind a single listener, with a fast fleet-wide rekey ticker.
func startRegistry(t *testing.T, groups int, period time.Duration) *server.Registry {
	t.Helper()
	reg := server.NewRegistry()
	for g := 0; g < groups; g++ {
		scheme, err := core.NewOneTree(
			core.WithRand(keycrypt.NewDeterministicReader(uint64(1000+g))),
			core.WithKeyIDBase(store.GroupKeyIDBase(wire.GroupID(g))),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Add(wire.GroupID(g), server.New(scheme, nil)); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	reg.Serve(ln)
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				reg.RekeyAllNow()
			}
		}
	}()
	t.Cleanup(func() {
		close(stop)
		reg.Close()
	})
	return reg
}

// TestSoakSixtyFourGroups is the multi-group acceptance soak: one host,
// 64 independent groups, slots spread round-robin, zero protocol errors.
func TestSoakSixtyFourGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const groups = 64
	reg := startRegistry(t, groups, 50*time.Millisecond)
	r := New(Config{
		Addr:        reg.Addr().String(),
		Members:     2 * groups,
		Groups:      groups,
		Duration:    3 * time.Second,
		Seed:        64,
		Churn:       workload.PaperDefault().Compressed(500),
		MinStay:     100 * time.Millisecond,
		JoinTimeout: 10 * time.Second,
	})
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Groups != groups {
		t.Fatalf("report says %d groups, want %d", rep.Groups, groups)
	}
	if rep.ProtocolErrors != 0 {
		t.Fatalf("protocol errors across %d groups: %d (%v)", groups, rep.ProtocolErrors, rep.ErrorSamples)
	}
	if rep.Joins < uint64(2*groups) {
		t.Fatalf("expected every slot to join at least once, got %d joins", rep.Joins)
	}
	if rep.RekeysSeen == 0 {
		t.Fatal("no rekeys observed across the fleet")
	}
	// Every group must actually have been exercised: with two slots per
	// group and round-robin placement, each hosted server saw admissions.
	idle := 0
	for g := 0; g < groups; g++ {
		if reg.Get(wire.GroupID(g)).Epoch() == 0 {
			idle++
		}
	}
	if idle > 0 {
		t.Fatalf("%d of %d groups never rekeyed", idle, groups)
	}
}
