package loadgen

import (
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		FormatVersion:   ReportFormatVersion,
		Addr:            "127.0.0.1:7600",
		Scenario:        "smoke-transcon",
		Region:          "transcon",
		Members:         200,
		DurationSeconds: 30.5,
		Seed:            42,
		Joins:           612,
		JoinsDeferred:   3,
		JoinErrors:      1,
		Leaves:          598,
		Disconnects:     14,
		Resumes:         9,
		ResumeFailures:  5,
		RekeysSeen:      120,
		FinalEpoch:      121,
		MissedRekeys:    2,
		ProtocolErrors:  0,
		PeakActive:      200,
		JoinLatency:     LatencySummary{Count: 612, Mean: 0.031, P50: 0.02, P95: 0.09, P99: 0.2, Max: 0.5},
		RekeySpread:     LatencySummary{Count: 70000, Mean: 0.002, P50: 0.001, P95: 0.006, P99: 0.01, Max: 0.05},
		ErrorSamples:    []string{"join: connection refused"},
	}
}

func TestReportRoundTrip(t *testing.T) {
	want := sampleReport()
	b, err := EncodeReport(want)
	if err != nil {
		t.Fatalf("EncodeReport: %v", err)
	}
	got, err := DecodeReport(b)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if got.Joins != want.Joins || got.RekeySpread != want.RekeySpread ||
		got.Addr != want.Addr || got.FinalEpoch != want.FinalEpoch {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if len(got.ErrorSamples) != 1 || got.ErrorSamples[0] != want.ErrorSamples[0] {
		t.Fatalf("error samples mismatch: %v", got.ErrorSamples)
	}
}

func TestSLOCheckAndGate(t *testing.T) {
	r := sampleReport()
	r.ProtocolErrors = 0
	r.MissedRekeys = 2
	r.RekeySpread.P99 = 0.01

	pass := SLO{MaxProtocolErrors: 0, MaxMissedRekeys: 5, MaxSpreadP99: 0.5}
	if v := pass.Check(r); len(v) != 0 {
		t.Fatalf("passing SLO produced violations: %v", v)
	}
	if !r.Gate(pass) || r.SLOResult == nil || !r.SLOResult.Passed {
		t.Fatalf("Gate(pass) verdict: %+v", r.SLOResult)
	}
	if b, err := EncodeReport(r); err != nil {
		t.Fatalf("encode with slo_result: %v", err)
	} else if rt, err := DecodeReport(b); err != nil || rt.SLOResult == nil || !rt.SLOResult.Passed {
		t.Fatalf("slo_result round trip: %v %+v", err, rt.SLOResult)
	}

	fail := SLO{MaxProtocolErrors: 0, MaxMissedRekeys: 1, MaxSpreadP99: 0.001}
	if v := fail.Check(r); len(v) != 2 {
		t.Fatalf("want 2 violations, got %v", v)
	}
	if r.Gate(fail) || r.SLOResult.Passed {
		t.Fatalf("Gate(fail) verdict: %+v", r.SLOResult)
	}

	ungated := SLO{MaxProtocolErrors: -1, MaxMissedRekeys: -1, MaxSpreadP99: 0}
	r.ProtocolErrors = 99
	r.MissedRekeys = 99
	if v := ungated.Check(r); len(v) != 0 {
		t.Fatalf("ungated SLO produced violations: %v", v)
	}
}

func TestDecodeReportRejectsBadInput(t *testing.T) {
	good, err := EncodeReport(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"not json":       "{",
		"wrong version":  strings.Replace(string(good), `"format_version": 2`, `"format_version": 7`, 1),
		"unknown field":  strings.Replace(string(good), `"addr"`, `"bogus_field"`, 1),
		"trailing data":  string(good) + "{}",
		"negative count": strings.Replace(string(good), `"members": 200`, `"members": -4`, 1),
		"inconsistent errors": strings.Replace(string(good),
			`"bad_signatures": 0`, `"bad_signatures": 9`, 1),
	}
	for name, in := range cases {
		if _, err := DecodeReport([]byte(in)); err == nil {
			t.Errorf("%s: decode accepted invalid report", name)
		}
	}
}

func FuzzDecodeReport(f *testing.F) {
	if b, err := EncodeReport(sampleReport()); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"format_version":1}`))
	f.Add([]byte(`{"format_version":1,"join_latency":{"mean_seconds":-1}}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReport(data)
		if err != nil {
			return
		}
		// Whatever decodes must survive its own invariants and re-encode.
		if r.FormatVersion < 1 || r.FormatVersion > ReportFormatVersion {
			t.Fatalf("decoded report with version %d", r.FormatVersion)
		}
		if _, err := EncodeReport(r); err != nil {
			t.Fatalf("accepted report fails re-encode: %v", err)
		}
	})
}
