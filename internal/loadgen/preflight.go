package loadgen

import (
	"fmt"
	"net"
	"strings"
	"time"
)

// preflightProbe bounds the post-connect liveness read. The key server
// never writes first (members open with MsgJoin), so a healthy endpoint
// lets the probe time out; an endpoint that closes immediately is a proxy
// whose backend dial failed.
const preflightProbe = 300 * time.Millisecond

// Preflight verifies every address accepts TCP connections and does not
// hang up immediately, so a fleet pointed at a dead proxy or a proxy with
// a dead backend fails fast with a clear error instead of burning the
// whole run in dial backoff. It returns nil when every address passes and
// an error naming each failing address otherwise.
func Preflight(addrs []string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	var bad []string
	for _, addr := range addrs {
		if err := preflightOne(addr, timeout); err != nil {
			bad = append(bad, fmt.Sprintf("%s: %v", addr, err))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("loadgen: preflight failed for %d/%d endpoints:\n  %s",
			len(bad), len(addrs), strings.Join(bad, "\n  "))
	}
	return nil
}

func preflightOne(addr string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("unreachable: %w", err)
	}
	defer conn.Close()
	// A wanproxy (or TCP load balancer) accepts before dialing its
	// backend and closes the member side when that dial fails — the
	// accept alone proves nothing. Distinguish the two by reading: a live
	// key server stays silent until our probe deadline expires, a dead
	// backend surfaces as an immediate EOF/reset.
	conn.SetReadDeadline(time.Now().Add(preflightProbe))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil {
		return nil // server spoke first: alive, whatever the protocol
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return nil // silent and open: alive
	}
	return fmt.Errorf("endpoint accepted then closed (dead backend behind a proxy?): %w", err)
}
