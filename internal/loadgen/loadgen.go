// Package loadgen drives a live key server with thousands of concurrent
// synthetic members to measure rekey delivery under churn and overload.
//
// Each configured member slot runs a join → stay → leave loop forever:
// the stay is drawn from a workload duration model (optionally
// time-compressed so hours of churn replay in seconds), joins honor the
// server's MsgRetry admission deferrals with backoff, and unexpected
// disconnects either resume the saved session or rejoin fresh. A shared
// collector aggregates join latency, rekey delivery spread, missed
// epochs, and protocol errors into a machine-readable Report
// (SOAK_report.json) that CI gates on.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"groupkey/internal/metrics"
	"groupkey/internal/server"
	"groupkey/internal/wire"
	"groupkey/internal/workload"
)

// Config parameterizes one load/soak run.
type Config struct {
	// Addr is the key server's TCP address. For a replicated cluster, use
	// Addrs instead (Addr is kept as the single-server convenience).
	Addr string
	// Addrs lists every cluster node's client address. Slots spread their
	// dials across the list and rotate to the next node when one stops
	// answering, so a failover mid-run only costs the affected dials their
	// backoff, not the whole population.
	Addrs []string
	// AddrMap rewrites cluster redirect targets onto the member-local
	// path: keys are addresses the cluster advertises in redirects, values
	// the addresses this fleet must dial instead (its region proxy front).
	// Entries in Addrs are used as-is; only redirect targets are mapped.
	AddrMap map[string]string
	// Scenario and Region label the run for the report (chaos harness
	// bookkeeping; empty is fine).
	Scenario string
	Region   string
	// Members is the number of concurrent member slots to sustain.
	Members int
	// Groups spreads the member slots round-robin across hosted groups
	// 0..Groups-1 on a multi-group server (0 or 1 = default group only).
	Groups int
	// Duration bounds the run (0 = until the context is cancelled).
	Duration time.Duration
	// Seed makes the churn schedule reproducible.
	Seed uint64
	// FaultPlanHash records the canonical hash of the fault plan the
	// surrounding harness is injecting (empty = no plan). It is echoed
	// into the report for replay bookkeeping; loadgen itself injects no
	// faults.
	FaultPlanHash string
	// Churn samples each session's stay duration. Zero value selects the
	// paper's two-class model compressed so mean stays are ~2s.
	Churn workload.TwoClass
	// LossRate is reported in every join request (negative = unknown).
	LossRate float64
	// UDPAddr subscribes every admitted session to the server's datagram
	// rekey plane at this address (empty = TCP delivery only).
	UDPAddr string
	// JoinTimeout bounds each join/resume handshake.
	JoinTimeout time.Duration
	// RampPerSec staggers initial slot starts to this many joins/second
	// (0 = all slots start immediately).
	RampPerSec float64
	// Resume saves session state and resumes after unexpected
	// disconnects instead of rejoining fresh.
	Resume bool
	// MinStay floors sampled stays so compressed models cannot produce
	// zero-length sessions.
	MinStay time.Duration
}

func (c Config) withDefaults() Config {
	if len(c.Addrs) == 0 && c.Addr != "" {
		c.Addrs = []string{c.Addr}
	}
	if c.Addr == "" && len(c.Addrs) > 0 {
		c.Addr = strings.Join(c.Addrs, ",")
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 30 * time.Second
	}
	if c.MinStay <= 0 {
		c.MinStay = 100 * time.Millisecond
	}
	if c.Churn.Short == nil || c.Churn.Long == nil {
		// Paper model compressed 100×: mean short stay 1.8s, long 108s.
		c.Churn = workload.PaperDefault().Compressed(100)
	}
	if c.LossRate == 0 {
		c.LossRate = -1
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
	return c
}

// rewrite builds the redirect-target rewrite for DialGroupVia/ResumeDialVia
// (nil when no AddrMap is configured).
func (c Config) rewrite() func(string) string {
	if len(c.AddrMap) == 0 {
		return nil
	}
	m := c.AddrMap
	return func(addr string) string {
		if to, ok := m[addr]; ok {
			return to
		}
		return addr
	}
}

// Runner executes one load/soak run.
type Runner struct {
	cfg     Config
	rewrite func(string) string
	col     collector
}

// New builds a runner; zero-valued Config fields pick defaults.
func New(cfg Config) *Runner {
	r := &Runner{cfg: cfg.withDefaults()}
	r.rewrite = r.cfg.rewrite()
	r.col.init()
	return r
}

// Run sustains the configured member population until Duration elapses or
// ctx is cancelled, then returns the aggregated report.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if len(r.cfg.Addrs) == 0 {
		return nil, fmt.Errorf("loadgen: no server address")
	}
	if r.cfg.Members <= 0 {
		return nil, fmt.Errorf("loadgen: members must be positive, got %d", r.cfg.Members)
	}
	if r.cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Duration)
		defer cancel()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.Members; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			r.slot(ctx, idx)
		}(i)
	}
	wg.Wait()
	return r.col.report(r.cfg, time.Since(start)), nil
}

// slot runs one member's join → stay → leave loop until ctx is done. The
// slot index pins the member to one hosted group for the whole run.
func (r *Runner) slot(ctx context.Context, idx int) {
	rng := rand.New(rand.NewPCG(r.cfg.Seed, uint64(idx)+1))
	group := wire.GroupID(idx % r.cfg.Groups)
	if r.cfg.RampPerSec > 0 {
		ramp := time.Duration(float64(idx) / r.cfg.RampPerSec * float64(time.Second))
		if !sleepCtx(ctx, ramp) {
			return
		}
	}
	var state []byte
	for ctx.Err() == nil {
		c := r.connect(ctx, rng, idx, group, &state)
		if c == nil {
			return
		}
		if r.cfg.UDPAddr != "" {
			// Best-effort: TCP delivery still covers the session if the
			// subscription fails, so the slot keeps running either way.
			if err := c.EnableDatagram(r.cfg.UDPAddr, 0, 0); err != nil {
				r.col.noteUDPError(err)
			}
		}
		r.live(ctx, rng, c, &state)
	}
}

// connect joins (or resumes) one session, retrying deferrals and
// transient failures with backoff. Dials spread across the configured
// node addresses and rotate on every retry, so a dead cluster node costs
// one backoff before the slot moves on. Returns nil once ctx is done.
func (r *Runner) connect(ctx context.Context, rng *rand.Rand, idx int, group wire.GroupID, state *[]byte) *server.Client {
	backoff := 100 * time.Millisecond
	for attempt := 0; ctx.Err() == nil; attempt++ {
		addr := r.cfg.Addrs[(idx+attempt)%len(r.cfg.Addrs)]
		if r.cfg.Resume && *state != nil {
			// The saved state carries the slot's group; resume re-addresses it.
			c, err := server.ResumeDialVia(addr, *state, r.cfg.JoinTimeout, r.rewrite)
			*state = nil
			if err == nil {
				r.col.noteResume()
				return c
			}
			// The saved membership may have been evicted while away;
			// fall through to a fresh join.
			r.col.noteResumeFailure(err)
			continue
		}
		t0 := time.Now()
		c, err := server.DialGroupVia(addr, group, wire.JoinRequest{LossRate: r.cfg.LossRate}, r.cfg.JoinTimeout, r.rewrite)
		if err == nil {
			r.col.noteJoin(time.Since(t0))
			return c
		}
		var def *server.DeferredError
		if errors.As(err, &def) {
			// Admission deferred, not an error: honor the server's hint
			// (capped so a soak never stalls a slot for long).
			wait := def.After
			if wait > 5*time.Second {
				wait = 5 * time.Second
			}
			r.col.noteJoinDeferred()
			if !sleepCtx(ctx, wait) {
				return nil
			}
			continue
		}
		r.col.noteJoinError(err)
		jitter := time.Duration(rng.Int64N(int64(backoff)))
		if !sleepCtx(ctx, backoff+jitter) {
			return nil
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	return nil
}

// live holds one admitted session open for its sampled stay, tracking
// rekey delivery, then leaves (or records the disconnect).
func (r *Runner) live(ctx context.Context, rng *rand.Rand, c *server.Client, state *[]byte) {
	last := c.Epoch()
	group := c.Group()
	c.SetEpochHook(func(epoch uint64) {
		r.col.observeEpoch(group, epoch)
		if last != 0 && epoch > last+1 {
			r.col.addMissed(epoch - last - 1)
		}
		if epoch > last {
			last = epoch
		}
	})

	_, staySec := r.cfg.Churn.SampleClass(rng)
	stay := time.Duration(staySec * float64(time.Second))
	if stay < r.cfg.MinStay {
		stay = r.cfg.MinStay
	}

	stayTimer := time.NewTimer(stay)
	defer stayTimer.Stop()
	select {
	case <-c.Done():
		// Server-side close: eviction, shutdown, or transport failure.
		r.col.noteDisconnect()
		if r.cfg.Resume {
			if st, err := c.State(); err == nil {
				*state = st
			}
		}
		c.Close()
	case <-stayTimer.C:
		r.leave(c)
	case <-ctx.Done():
		// Run over: leave politely so the server's group drains.
		r.leave(c)
	}
	r.col.harvest(c)
}

// leave ends a session voluntarily; a failed leave write means the
// connection was already dead, which counts as a disconnect.
func (r *Runner) leave(c *server.Client) {
	if err := c.Leave(); err != nil {
		r.col.noteDisconnect()
	} else {
		r.col.noteLeave()
	}
	c.Close()
}

// sleepCtx sleeps d unless ctx ends first; reports whether it slept fully.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// collector aggregates the run's counters and latency histograms. All
// methods are safe for concurrent use by member slots.
type collector struct {
	mu             sync.Mutex
	joins          uint64
	joinsDeferred  uint64
	joinErrors     uint64
	leaves         uint64
	disconnects    uint64
	resumes        uint64
	resumeFailures uint64
	missedRekeys   uint64
	protocolErrors uint64
	badSignatures  uint64
	undecryptable  uint64
	active         int
	peakActive     int
	maxEpoch       uint64
	firstSeen      map[groupEpoch]time.Time
	samples        []string

	joinLatency *metrics.Histogram
	rekeySpread *metrics.Histogram
}

// maxErrorSamples caps the error excerpts carried in the report.
const maxErrorSamples = 16

// groupEpoch keys rekey-delivery tracking: epochs advance independently
// per hosted group, so cross-group collisions must not anchor each other.
type groupEpoch struct {
	group wire.GroupID
	epoch uint64
}

func (col *collector) init() {
	col.firstSeen = make(map[groupEpoch]time.Time)
	// Join latency: 1ms–131s; spread: 0.1ms–26s.
	col.joinLatency = metrics.NewHistogram(metrics.ExponentialBuckets(0.001, 2, 18))
	col.rekeySpread = metrics.NewHistogram(metrics.ExponentialBuckets(0.0001, 2, 18))
}

func (col *collector) sampleLocked(kind string, err error) {
	if len(col.samples) < maxErrorSamples {
		col.samples = append(col.samples, kind+": "+err.Error())
	}
}

func (col *collector) noteJoin(d time.Duration) {
	col.joinLatency.Observe(d.Seconds())
	col.mu.Lock()
	defer col.mu.Unlock()
	col.joins++
	col.active++
	if col.active > col.peakActive {
		col.peakActive = col.active
	}
}

func (col *collector) noteJoinDeferred() {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.joinsDeferred++
}

func (col *collector) noteJoinError(err error) {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.joinErrors++
	col.sampleLocked("join", err)
}

func (col *collector) noteUDPError(err error) {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.sampleLocked("udp", err)
}

func (col *collector) noteResume() {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.resumes++
	col.active++
	if col.active > col.peakActive {
		col.peakActive = col.active
	}
}

func (col *collector) noteResumeFailure(err error) {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.resumeFailures++
	col.sampleLocked("resume", err)
}

func (col *collector) noteLeave() {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.leaves++
	col.active--
}

func (col *collector) noteDisconnect() {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.disconnects++
	col.active--
}

func (col *collector) addMissed(n uint64) {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.missedRekeys += n
}

// observeEpoch records one member's receipt of a rekey: the first
// observer in the member's group anchors the epoch, later ones contribute
// their lag to the delivery-spread histogram.
func (col *collector) observeEpoch(group wire.GroupID, epoch uint64) {
	now := time.Now()
	key := groupEpoch{group, epoch}
	col.mu.Lock()
	t0, seen := col.firstSeen[key]
	if !seen {
		col.firstSeen[key] = now
		if epoch > col.maxEpoch {
			col.maxEpoch = epoch
		}
	}
	col.mu.Unlock()
	if seen {
		col.rekeySpread.Observe(now.Sub(t0).Seconds())
	}
}

// harvest folds a finished session's client-side counters into the run
// totals. Forged signatures and undecryptable payloads are protocol
// errors: a healthy server/member pair never produces them.
func (col *collector) harvest(c *server.Client) {
	bad := uint64(c.BadSignatures())
	und := uint64(c.Undecryptable())
	if bad == 0 && und == 0 {
		return
	}
	col.mu.Lock()
	defer col.mu.Unlock()
	col.badSignatures += bad
	col.undecryptable += und
	col.protocolErrors += bad + und
	if bad > 0 {
		col.sampleLocked("verify", fmt.Errorf("%d frames failed signature verification", bad))
	}
	if und > 0 {
		col.sampleLocked("decrypt", fmt.Errorf("%d data frames undecryptable", und))
	}
}

func summarize(h *metrics.Histogram) LatencySummary {
	s := h.Summary()
	return LatencySummary{
		Count: s.Count,
		Mean:  s.Mean,
		P50:   s.P50,
		P95:   s.P95,
		P99:   s.P99,
		Max:   s.Max,
	}
}

func (col *collector) report(cfg Config, elapsed time.Duration) *Report {
	col.mu.Lock()
	defer col.mu.Unlock()
	return &Report{
		FormatVersion:   ReportFormatVersion,
		Addr:            cfg.Addr,
		Scenario:        cfg.Scenario,
		Region:          cfg.Region,
		Members:         cfg.Members,
		Groups:          cfg.Groups,
		DurationSeconds: elapsed.Seconds(),
		Seed:            cfg.Seed,
		FaultPlanHash:   cfg.FaultPlanHash,
		Joins:           col.joins,
		JoinsDeferred:   col.joinsDeferred,
		JoinErrors:      col.joinErrors,
		Leaves:          col.leaves,
		Disconnects:     col.disconnects,
		Resumes:         col.resumes,
		ResumeFailures:  col.resumeFailures,
		RekeysSeen:      uint64(len(col.firstSeen)),
		FinalEpoch:      col.maxEpoch,
		MissedRekeys:    col.missedRekeys,
		ProtocolErrors:  col.protocolErrors,
		BadSignatures:   col.badSignatures,
		Undecryptable:   col.undecryptable,
		PeakActive:      col.peakActive,
		JoinLatency:     summarize(col.joinLatency),
		RekeySpread:     summarize(col.rekeySpread),
		ErrorSamples:    append([]string(nil), col.samples...),
	}
}
