package loadgen

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestPreflight covers the three endpoint fates: silent-and-open passes,
// accept-then-close (a proxy with a dead backend) fails, and a closed
// port fails.
func TestPreflight(t *testing.T) {
	alive, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer alive.Close()
	go func() {
		for {
			c, err := alive.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold silently until the test ends
		}
	}()

	slammer, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer slammer.Close()
	go func() {
		for {
			c, err := slammer.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	if err := Preflight([]string{alive.Addr().String()}, 2*time.Second); err != nil {
		t.Fatalf("live endpoint failed preflight: %v", err)
	}
	err = Preflight([]string{alive.Addr().String(), slammer.Addr().String(), deadAddr}, 2*time.Second)
	if err == nil {
		t.Fatal("preflight passed with dead endpoints")
	}
	if !strings.Contains(err.Error(), "2/3") {
		t.Fatalf("want 2/3 endpoints failing, got: %v", err)
	}
	if !strings.Contains(err.Error(), "accepted then closed") {
		t.Fatalf("slammer not diagnosed as dead backend: %v", err)
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("closed port not diagnosed as unreachable: %v", err)
	}
}
