package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeLabelValue applies the text-format escaping rules for label
// values: backslash, double quote and newline.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// labelString renders {a="x",b="y"}, with extra appended after the
// series' own labels (used for the histogram le label). Empty when there
// are no labels at all.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by name for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastName := ""
	for _, s := range r.snapshot() {
		if s.name != lastName {
			if s.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, strings.ReplaceAll(s.help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
			lastName = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, labelString(s.labels), s.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, labelString(s.labels), formatFloat(s.gauge.Value()))
		case kindHistogram:
			h := s.hist
			counts := h.bucketCounts()
			var cum uint64
			for i, bound := range h.bounds {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name,
					labelString(s.labels, Label{Name: "le", Value: formatFloat(bound)}), cum)
			}
			cum += counts[len(h.bounds)]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name,
				labelString(s.labels, Label{Name: "le", Value: "+Inf"}), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, labelString(s.labels), formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, labelString(s.labels), h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonSeries is the JSON rendering of one series. Counter and gauge use
// Value; histograms report the digest plus cumulative buckets.
type jsonSeries struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`

	Value *float64 `json:"value,omitempty"`

	Count   *uint64      `json:"count,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Mean    *float64     `json:"mean,omitempty"`
	Min     *float64     `json:"min,omitempty"`
	Max     *float64     `json:"max,omitempty"`
	P50     *float64     `json:"p50,omitempty"`
	P95     *float64     `json:"p95,omitempty"`
	P99     *float64     `json:"p99,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

// jsonBucket is one cumulative histogram bucket; LE is "+Inf" for the
// last.
type jsonBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// WriteJSON renders every registered series as a JSON array, sorted by
// name for stable output.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make([]jsonSeries, 0)
	f := func(v float64) *float64 { return &v }
	for _, s := range r.snapshot() {
		js := jsonSeries{Name: s.name, Type: s.kind.String(), Help: s.help}
		if len(s.labels) > 0 {
			js.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				js.Labels[l.Name] = l.Value
			}
		}
		switch s.kind {
		case kindCounter:
			js.Value = f(float64(s.counter.Value()))
		case kindGauge:
			js.Value = f(s.gauge.Value())
		case kindHistogram:
			h := s.hist
			sum := h.Summary()
			n := sum.Count
			js.Count = &n
			js.Sum, js.Mean = f(sum.Sum), f(sum.Mean)
			js.Min, js.Max = f(sum.Min), f(sum.Max)
			js.P50, js.P95, js.P99 = f(sum.P50), f(sum.P95), f(sum.P99)
			counts := h.bucketCounts()
			var cum uint64
			for i, bound := range h.bounds {
				cum += counts[i]
				js.Buckets = append(js.Buckets, jsonBucket{LE: formatFloat(bound), Count: cum})
			}
			cum += counts[len(h.bounds)]
			js.Buckets = append(js.Buckets, jsonBucket{LE: "+Inf", Count: cum})
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
