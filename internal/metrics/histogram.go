package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default histogram bounds (seconds), matching the
// Prometheus client default — a good fit for rekey latencies.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// LinearBuckets returns count bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds starting at start, each factor
// times the previous — the right shape for key counts and byte volumes
// that span orders of magnitude.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram counts observations into fixed buckets and keeps sum, count,
// min and max, so renders can report both Prometheus cumulative buckets
// and p50/p95/p99 estimates. All methods are safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds; a +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
}

// atomicFloat is a CAS-updated float64.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// lower moves the float down to v if v is smaller.
func (f *atomicFloat) lower(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// raise moves the float up to v if v is larger.
func (f *atomicFloat) raise(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds; nil or empty means DefBuckets. Duplicate bounds are merged.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	dedup := sorted[:0]
	for i, b := range sorted {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	h := &Histogram{
		bounds: dedup,
		counts: make([]atomic.Uint64, len(dedup)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.lower(v)
	h.max.raise(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.Count() == 0 {
		return 0
	}
	return h.min.load()
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return h.max.load()
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// bucketCounts snapshots the per-bucket counts (last entry is the +Inf
// bucket).
func (h *Histogram) bucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank — the same estimate a
// Prometheus histogram_quantile() would produce. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.bucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts[:len(h.bounds)] {
		cum += float64(c)
		if cum >= rank && c > 0 {
			hi := h.bounds[i]
			lo := h.min.load()
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if lo > hi {
				lo = hi
			}
			frac := (rank - (cum - float64(c))) / float64(c)
			// Interpolation can overshoot the observed range when the
			// bucket is wider than the data in it; clamp to max.
			return math.Min(lo+frac*(hi-lo), h.max.load())
		}
	}
	// Target rank lies in the +Inf bucket: the max is the best estimate.
	return h.max.load()
}

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count uint64
	Sum   float64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
}

// Summary digests the histogram.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// String renders the digest as one aligned report line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
