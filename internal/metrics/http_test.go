package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := buildGoldenRegistry()
	tr := NewRekeyTracer(4)
	tr.Record(RekeyEvent{Scheme: "two-partition-tt", Joins: 2, KeysEncrypted: 7})
	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ctype, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if body != goldenPrometheus {
		t.Errorf("/metrics body mismatch:\n%s", body)
	}

	code, ctype, body = get("/metrics.json")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json status %d type %q", code, ctype)
	}
	var series []map[string]any
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if len(series) != 5 {
		t.Errorf("/metrics.json has %d series, want 5", len(series))
	}

	code, _, body = get("/rekeys.json")
	if code != http.StatusOK {
		t.Fatalf("/rekeys.json status %d", code)
	}
	var evs []RekeyEvent
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/rekeys.json not valid JSON: %v", err)
	}
	if len(evs) != 1 || evs[0].Scheme != "two-partition-tt" || evs[0].KeysEncrypted != 7 {
		t.Errorf("/rekeys.json events wrong: %+v", evs)
	}

	// No tracer: /rekeys.json 404s, the rest still serve.
	bare := httptest.NewServer(Handler(reg, nil))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/rekeys.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/rekeys.json without tracer: status %d, want 404", resp.StatusCode)
	}

	// Non-GET is rejected.
	resp, err = http.Post(srv.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", resp.StatusCode)
	}
}
