package metrics

import (
	"net/http"
)

// Handler serves the registry (and optionally a rekey tracer) over HTTP:
//
//	GET /metrics       Prometheus text exposition format
//	GET /metrics.json  the same series rendered as JSON
//	GET /rekeys.json   the tracer's recent rekey events (404 if no tracer)
//
// Rendering never blocks metric updates, so scraping a busy server is
// safe.
func Handler(reg *Registry, tracer *RekeyTracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/rekeys.json", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if tracer == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = tracer.WriteJSON(w)
	})
	return mux
}
