package metrics

import (
	"io"
	"sync"
	"testing"
)

// TestRegistryHammer exercises every instrument and both renderers from
// many goroutines at once; run under -race it proves the registry is safe
// to scrape while the server's hot paths update it.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	tr := NewRekeyTracer(64)
	const (
		workers = 8
		ops     = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				r.Counter("hammer_total", "").Inc()
				r.Counter("hammer_bytes_total", "").Add(64)
				r.Gauge("hammer_gauge", "").Set(float64(i))
				r.Gauge("hammer_shift", "").Add(1)
				r.Gauge("hammer_part", "", Label{Name: "p", Value: string(rune('a' + w))}).Set(float64(i))
				r.Histogram("hammer_seconds", "", DefBuckets).Observe(float64(i%100) / 100)
				tr.Record(RekeyEvent{Epoch: uint64(i)})
				if i%100 == 0 {
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
					if err := r.WriteJSON(io.Discard); err != nil {
						t.Errorf("WriteJSON: %v", err)
						return
					}
					if err := tr.WriteJSON(io.Discard); err != nil {
						t.Errorf("tracer WriteJSON: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("hammer_total", "").Value(); got != workers*ops {
		t.Errorf("hammer_total = %d, want %d", got, workers*ops)
	}
	if got := r.Counter("hammer_bytes_total", "").Value(); got != workers*ops*64 {
		t.Errorf("hammer_bytes_total = %d, want %d", got, workers*ops*64)
	}
	if got := r.Gauge("hammer_shift", "").Value(); got != workers*ops {
		t.Errorf("hammer_shift = %v, want %d", got, workers*ops)
	}
	h := r.Histogram("hammer_seconds", "", nil)
	if got := h.Count(); got != workers*ops {
		t.Errorf("histogram count = %d, want %d", got, workers*ops)
	}
	var cum uint64
	for _, c := range h.bucketCounts() {
		cum += c
	}
	if cum != workers*ops {
		t.Errorf("bucket counts sum to %d, want %d", cum, workers*ops)
	}
	if got := tr.Total(); got != workers*ops {
		t.Errorf("tracer total = %d, want %d", got, workers*ops)
	}
	if got := len(tr.Events()); got != 64 {
		t.Errorf("tracer retained %d events, want 64", got)
	}
}
