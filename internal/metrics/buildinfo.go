package metrics

import (
	"runtime"
	"time"
)

// Version is the build's version string, stamped at link time:
//
//	go build -ldflags "-X groupkey/internal/metrics.Version=v1.2.3"
//
// Unstamped builds report "dev".
var Version = "dev"

// RegisterBuildInfo exports the conventional build-identity series: a
// constant-1 groupkey_build_info gauge whose labels carry the version and
// Go toolchain, and the process start time for uptime dashboards and
// restart alerts. Call once per process, after NewRegistry.
func RegisterBuildInfo(reg *Registry) {
	reg.Gauge("groupkey_build_info",
		"Constant 1; the labels identify the running build.",
		Label{Name: "version", Value: Version},
		Label{Name: "goversion", Value: runtime.Version()},
	).Set(1)
	reg.Gauge("groupkey_process_start_time_seconds",
		"Unix time the process registered its metrics.",
	).Set(float64(time.Now().UnixNano()) / 1e9)
}
