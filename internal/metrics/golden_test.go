package metrics

import (
	"strings"
	"testing"
)

// buildGoldenRegistry populates a registry with one of each instrument,
// with fixed values, for the encoding golden tests.
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("groupkey_rekeys_total", "Rekey batches processed.").Add(3)
	r.Gauge("groupkey_members", "Current admitted group size.").Set(12)
	r.Gauge("groupkey_partition_members", "Members per partition.",
		Label{Name: "partition", Value: "s"}).Set(4)
	r.Gauge("groupkey_partition_members", "Members per partition.",
		Label{Name: "partition", Value: "l"}).Set(8)
	h := r.Histogram("groupkey_rekey_duration_seconds", "Rekey latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(2)
	return r
}

const goldenPrometheus = `# HELP groupkey_members Current admitted group size.
# TYPE groupkey_members gauge
groupkey_members 12
# HELP groupkey_partition_members Members per partition.
# TYPE groupkey_partition_members gauge
groupkey_partition_members{partition="l"} 8
groupkey_partition_members{partition="s"} 4
# HELP groupkey_rekey_duration_seconds Rekey latency.
# TYPE groupkey_rekey_duration_seconds histogram
groupkey_rekey_duration_seconds_bucket{le="0.01"} 1
groupkey_rekey_duration_seconds_bucket{le="0.1"} 3
groupkey_rekey_duration_seconds_bucket{le="1"} 3
groupkey_rekey_duration_seconds_bucket{le="+Inf"} 4
groupkey_rekey_duration_seconds_sum 2.105
groupkey_rekey_duration_seconds_count 4
# HELP groupkey_rekeys_total Rekey batches processed.
# TYPE groupkey_rekeys_total counter
groupkey_rekeys_total 3
`

func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenPrometheus {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), goldenPrometheus)
	}
}

const goldenJSON = `[
  {
    "name": "groupkey_members",
    "type": "gauge",
    "help": "Current admitted group size.",
    "value": 12
  },
  {
    "name": "groupkey_partition_members",
    "type": "gauge",
    "help": "Members per partition.",
    "labels": {
      "partition": "l"
    },
    "value": 8
  },
  {
    "name": "groupkey_partition_members",
    "type": "gauge",
    "help": "Members per partition.",
    "labels": {
      "partition": "s"
    },
    "value": 4
  },
  {
    "name": "groupkey_rekey_duration_seconds",
    "type": "histogram",
    "help": "Rekey latency.",
    "count": 4,
    "sum": 2.105,
    "mean": 0.52625,
    "min": 0.005,
    "max": 2,
    "p50": 0.05500000000000001,
    "p95": 2,
    "p99": 2,
    "buckets": [
      {
        "le": "0.01",
        "count": 1
      },
      {
        "le": "0.1",
        "count": 3
      },
      {
        "le": "1",
        "count": 3
      },
      {
        "le": "+Inf",
        "count": 4
      }
    ]
  },
  {
    "name": "groupkey_rekeys_total",
    "type": "counter",
    "help": "Rekey batches processed.",
    "value": 3
  }
]
`

func TestJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildGoldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenJSON {
		t.Errorf("json mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), goldenJSON)
	}
}
