package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// RekeyEvent is one structured trace record of a rekey operation — the
// per-batch quantities the paper's analysis is built on, captured live.
type RekeyEvent struct {
	// Seq is the tracer-assigned sequence number (1 for the first event).
	Seq uint64 `json:"seq"`
	// Time is when the rekey completed.
	Time time.Time `json:"time"`
	// Group is the hosted group the rekey belongs to, when the server is
	// running as a multi-group registry (empty for a standalone server).
	Group string `json:"group,omitempty"`
	// Scheme is the key-management scheme name.
	Scheme string `json:"scheme"`
	// Epoch is the scheme's rekey epoch.
	Epoch uint64 `json:"epoch"`
	// Joins and Leaves are the batch's membership changes.
	Joins  int `json:"joins"`
	Leaves int `json:"leaves"`
	// Members is the group size after the batch.
	Members int `json:"members"`
	// KeysEncrypted counts encrypted keys in the payload (multicast +
	// joiner items) — the paper's rekeying-cost metric.
	KeysEncrypted int `json:"keys_encrypted"`
	// Bytes is the broadcast volume actually written to members.
	Bytes int `json:"bytes"`
	// DurationSeconds covers batch processing through broadcast.
	DurationSeconds float64 `json:"duration_seconds"`
}

// RekeyTracer keeps the last N rekey events in a ring buffer, so a live
// server can answer "what did the recent rekeys cost" without logs. Safe
// for concurrent use.
type RekeyTracer struct {
	mu    sync.Mutex
	buf   []RekeyEvent
	next  int // ring write position
	total uint64
}

// defaultTraceDepth is used when NewRekeyTracer gets a capacity < 1.
const defaultTraceDepth = 128

// NewRekeyTracer returns a tracer retaining the last capacity events
// (defaultTraceDepth when capacity < 1).
func NewRekeyTracer(capacity int) *RekeyTracer {
	if capacity < 1 {
		capacity = defaultTraceDepth
	}
	return &RekeyTracer{buf: make([]RekeyEvent, 0, capacity)}
}

// Record appends one event, stamping its sequence number, and evicts the
// oldest when full.
func (t *RekeyTracer) Record(ev RekeyEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	ev.Seq = t.total
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next = (t.next + 1) % len(t.buf)
}

// Total returns how many events have been recorded since creation,
// including evicted ones.
func (t *RekeyTracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events, oldest first.
func (t *RekeyTracer) Events() []RekeyEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RekeyEvent, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	// Full ring: the oldest event sits at the write position.
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// WriteJSON renders the retained events (oldest first) as a JSON array.
func (t *RekeyTracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Events())
}
