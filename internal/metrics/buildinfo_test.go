package metrics

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	before := time.Now()
	RegisterBuildInfo(reg)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	want := `groupkey_build_info{goversion="` + runtime.Version() + `",version="` + Version + `"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "groupkey_process_start_time_seconds") {
		t.Fatalf("exposition missing start-time gauge:\n%s", out)
	}

	start := reg.Gauge("groupkey_process_start_time_seconds",
		"Unix time the process registered its metrics.").Value()
	if start < float64(before.Add(-time.Second).Unix()) || start > float64(time.Now().Add(time.Second).Unix()) {
		t.Fatalf("start time %f outside the test window", start)
	}
}
