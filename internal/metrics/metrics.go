// Package metrics is a dependency-free observability subsystem for the
// key server and its libraries: atomic counters and gauges, fixed-bucket
// histograms with quantile summaries, and a Registry that renders every
// registered series in Prometheus text exposition format and as JSON.
//
// The paper's evaluation is entirely about per-rekey cost — encrypted keys
// multicast, partition sizes, transport replication — quantities that
// internal/analytic recomputes offline. This package exports them as live
// time series instead, so a running keyserverd can be scraped (see
// Handler) and a simulation sweep can print latency/bandwidth percentiles
// without post-processing.
//
// All instruments are safe for concurrent use. Rendering is lock-free with
// respect to updates: a scrape observes each atomic independently, which
// is the standard Prometheus consistency model.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series. Series with
// the same name but different label sets are distinct (e.g. one
// groupkey_partition_members gauge per partition).
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone counter (use Registry.Counter for an
// exported one).
func NewCounter() *Counter { return &Counter{} }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// NewGauge returns a standalone gauge (use Registry.Gauge for an exported
// one).
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates the series types held by a Registry.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// series is one registered (name, labels) instrument.
type series struct {
	name   string
	help   string
	labels []Label // sorted by name
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments and renders them. The zero value is not
// usable; create with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// seriesKey builds the map key for a (name, sorted labels) pair.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// validName is the Prometheus metric/label name grammar (colons excluded:
// they are reserved for recording rules).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup returns the existing series or registers a new one built by mk.
// Registering the same (name, labels) with a different kind panics: that
// is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, mk func() *series) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, l := range sorted {
		if !validName(l.Name) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l.Name, name))
		}
	}
	key := seriesKey(name, sorted)

	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		s, ok = r.series[key]
		if !ok {
			s = mk()
			s.name, s.help, s.kind, s.labels = name, help, kind, sorted
			r.series[key] = s
		}
		r.mu.Unlock()
	}
	if s.kind != kind {
		panic(fmt.Sprintf("metrics: %q already registered as %v, requested as %v", key, s.kind, kind))
	}
	return s
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func() *series {
		return &series{counter: NewCounter()}
	})
	return s.counter
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func() *series {
		return &series{gauge: NewGauge()}
	})
	return s.gauge
}

// Histogram returns the histogram registered under (name, labels),
// creating it on first use with the given bucket upper bounds (nil means
// DefBuckets). Bounds passed on later lookups of an existing histogram are
// ignored.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels, func() *series {
		return &series{hist: NewHistogram(bounds)}
	})
	return s.hist
}

// snapshot returns every series sorted by name then label set — the
// stable rendering order, with all series of one name contiguous so HELP
// and TYPE headers are emitted once per name.
func (r *Registry) snapshot() []*series {
	r.mu.RLock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey("", out[i].labels) < seriesKey("", out[j].labels)
	})
	return out
}
