package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
}

func TestHistogramBucketsAndSummary(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	for _, v := range []float64{0.5, 1, 1.5, 3, 7, 20} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 33 {
		t.Fatalf("sum = %v, want 33", h.Sum())
	}
	if h.Min() != 0.5 || h.Max() != 20 {
		t.Fatalf("min/max = %v/%v, want 0.5/20", h.Min(), h.Max())
	}
	counts := h.bucketCounts()
	want := []uint64{2, 1, 1, 1, 1} // (≤1)=2, (1,2]=1, (2,5]=1, (5,10]=1, +Inf=1
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	s := h.Summary()
	if s.P50 <= 0 || s.P50 > 5 {
		t.Errorf("p50 = %v, want in (0, 5]", s.P50)
	}
	if s.P99 < s.P50 {
		t.Errorf("p99 %v < p50 %v", s.P99, s.P50)
	}
	if s.Mean != 5.5 {
		t.Errorf("mean = %v, want 5.5", s.Mean)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(1, 2, 10))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i % 97))
	}
	prev := math.Inf(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%v gave %v < %v", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1) > h.Max() {
		t.Fatalf("q1 %v > max %v", h.Quantile(1), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Summary()
	if s.Count != 0 || s.P50 != 0 || s.Min != 0 || s.Max != 0 || s.Mean != 0 {
		t.Fatalf("empty histogram summary not all zero: %+v", s)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 5, 4)
	if want := []float64{0, 5, 10, 15}; !equalFloats(lin, want) {
		t.Errorf("LinearBuckets = %v, want %v", lin, want)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if want := []float64{1, 10, 100}; !equalFloats(exp, want) {
		t.Errorf("ExponentialBuckets = %v, want %v", exp, want)
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c1.Inc()
	c2 := r.Counter("x_total", "help")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	// Distinct label sets are distinct series.
	a := r.Gauge("part", "", Label{Name: "p", Value: "s"})
	b := r.Gauge("part", "", Label{Name: "p", Value: "l"})
	if a == b {
		t.Fatal("distinct labels returned the same gauge")
	}
	// Label order must not matter.
	h1 := r.Histogram("h", "", nil, Label{Name: "a", Value: "1"}, Label{Name: "b", Value: "2"})
	h2 := r.Histogram("h", "", nil, Label{Name: "b", Value: "2"}, Label{Name: "a", Value: "1"})
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("dual", "")
}

func TestRegistryBadNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid metric name")
		}
	}()
	r.Counter("bad name!", "")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", Label{Name: "v", Value: "a\"b\\c\nd"}).Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `g{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

func TestRekeyTracerRing(t *testing.T) {
	tr := NewRekeyTracer(3)
	for i := 1; i <= 5; i++ {
		tr.Record(RekeyEvent{Epoch: uint64(i)})
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d, want 3", len(evs))
	}
	for i, want := range []uint64{3, 4, 5} {
		if evs[i].Seq != want || evs[i].Epoch != want {
			t.Fatalf("event %d = seq %d epoch %d, want %d", i, evs[i].Seq, evs[i].Epoch, want)
		}
	}
}

func TestRekeyTracerPartial(t *testing.T) {
	tr := NewRekeyTracer(8)
	tr.Record(RekeyEvent{})
	tr.Record(RekeyEvent{})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("partial ring wrong: %+v", evs)
	}
}
