// One-way function trees: the alternative key-tree construction of
// Section 2.1.1 — members *compute* the group key from blinded sibling
// keys instead of receiving it encrypted, and a membership change costs
// one blinded key per tree level instead of LKH's two (binary trees).
//
// The example drives the same churn through a binary LKH tree and an OFT,
// verifies on real member state that everyone agrees on the group key
// (and that an evicted member is locked out), and compares payload sizes.
//
// Run with: go run ./examples/oft
package main

import (
	"fmt"
	"log"

	"groupkey/internal/keycrypt"
	"groupkey/internal/keytree"
)

const (
	groupSize = 256
	epochs    = 40
)

func main() {
	// Server-side trees.
	lkh, err := keytree.New(2, keytree.WithRand(keycrypt.NewDeterministicReader(1)))
	if err != nil {
		log.Fatal(err)
	}
	oft, err := keytree.NewOFT(keytree.WithRand(keycrypt.NewDeterministicReader(2)))
	if err != nil {
		log.Fatal(err)
	}

	// Populate both and keep real OFT member state for verification.
	initial := keytree.Batch{}
	for i := 1; i <= groupSize; i++ {
		initial.Joins = append(initial.Joins, keytree.MemberID(i))
	}
	if _, err := lkh.Rekey(initial); err != nil {
		log.Fatal(err)
	}
	firstPayload, err := oft.Rekey(initial)
	if err != nil {
		log.Fatal(err)
	}
	members := make(map[keytree.MemberID]*keytree.OFTMember, groupSize)
	for i := 1; i <= groupSize; i++ {
		id := keytree.MemberID(i)
		secret, err := oft.LeafSecret(id)
		if err != nil {
			log.Fatal(err)
		}
		m := keytree.NewOFTMember(id, secret)
		m.Apply(firstPayload)
		members[id] = m
	}

	// Churn: one replacement per epoch (J = L = 1).
	lkhKeys, oftKeys := 0, 0
	next := keytree.MemberID(groupSize + 1)
	victim := keytree.MemberID(1)
	for e := 0; e < epochs; e++ {
		batch := keytree.Batch{Joins: []keytree.MemberID{next}, Leaves: []keytree.MemberID{victim}}
		lp, err := lkh.Rekey(batch)
		if err != nil {
			log.Fatal(err)
		}
		op, err := oft.Rekey(batch)
		if err != nil {
			log.Fatal(err)
		}
		lkhKeys += lp.MulticastKeyCount()
		oftKeys += op.MulticastKeyCount()

		// Member-side bookkeeping on the OFT: the evicted member is
		// replaced, the joiner bootstraps, everyone else follows blinds.
		evicted := members[victim]
		if n := evicted.Apply(op); n != 0 {
			log.Fatalf("epoch %d: evicted member consumed %d items", e, n)
		}
		delete(members, victim)
		secret, err := oft.LeafSecret(next)
		if err != nil {
			log.Fatal(err)
		}
		joiner := keytree.NewOFTMember(next, secret)
		joiner.Apply(op)
		members[next] = joiner
		want, err := oft.GroupKey()
		if err != nil {
			log.Fatal(err)
		}
		for id, m := range members {
			m.Apply(op)
			got, ok := m.GroupKey()
			if !ok || !got.Equal(want) {
				log.Fatalf("epoch %d: member %d disagrees on the group key", e, id)
			}
		}
		if got, ok := evicted.GroupKey(); ok && got.Equal(want) {
			log.Fatalf("epoch %d: evicted member computed the group key", e)
		}

		victim = keytree.MemberID(e + 2) // evict the next-oldest original member
		next++
	}

	fmt.Printf("%d members, %d replacement epochs, all group keys verified on real member state\n",
		groupSize, epochs)
	fmt.Printf("binary LKH multicast keys:      %5d (%.1f per epoch)\n", lkhKeys, float64(lkhKeys)/epochs)
	fmt.Printf("OFT multicast keys:             %5d (%.1f per epoch)\n", oftKeys, float64(oftKeys)/epochs)
	fmt.Printf("OFT saves %.1f%% — one blinded key per level instead of two child wraps\n",
		100*float64(lkhKeys-oftKeys)/float64(lkhKeys))
	fmt.Println("evicted members were cryptographically locked out at every epoch")
}
