// Pay-per-view: the workload that motivates the paper's two-partition
// optimization (Section 3).
//
// An MBone-like audience — most viewers sample the stream for minutes, a
// loyal minority stays for hours — churns through a large group. The
// example runs the same churn trace through the one-keytree baseline and
// the TT two-partition scheme and reports the rekeying-bandwidth savings,
// alongside the analytic model's prediction.
//
// Run with: go run ./examples/payperview
package main

import (
	"fmt"
	"log"

	"groupkey/internal/analytic"
	"groupkey/internal/core"
	"groupkey/internal/keycrypt"
	"groupkey/internal/sim"
	"groupkey/internal/workload"
)

const (
	groupSize = 4096
	periods   = 120
	warmup    = 40
	sPeriodK  = 10
)

func main() {
	durations := workload.PaperDefault() // α=0.8 short viewers at 3 min, rest at 3 h

	run := func(name string, scheme core.Scheme) float64 {
		res, err := sim.Run(sim.Config{
			Seed:      7,
			GroupSize: groupSize,
			Periods:   periods,
			Tp:        60,
			Warmup:    warmup,
			Durations: durations,
			Loss:      workload.PaperLossModel(0.2),
			Scheme:    scheme,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s mean %8.1f keys/period (group ≈ %.0f, churn ≈ %.0f joins+%.0f leaves)\n",
			name, res.MeanMulticastKeys, res.MeanGroupSize, res.MeanJoins, res.MeanLeaves)
		return res.MeanMulticastKeys
	}

	oneTree, err := core.NewOneTree(core.WithRand(keycrypt.NewDeterministicReader(1)))
	if err != nil {
		log.Fatal(err)
	}
	tt, err := core.NewTwoPartition(core.TT, sPeriodK, core.WithRand(keycrypt.NewDeterministicReader(2)))
	if err != nil {
		log.Fatal(err)
	}
	qt, err := core.NewTwoPartition(core.QT, sPeriodK, core.WithRand(keycrypt.NewDeterministicReader(3)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pay-per-view session: %d viewers, %d one-minute rekey periods, S-period K=%d\n\n",
		groupSize, periods, sPeriodK)
	one := run("one-keytree", oneTree)
	ttCost := run("two-partition (TT)", tt)
	qtCost := run("two-partition (QT)", qt)

	fmt.Printf("\nTT saves %.1f%%, QT saves %.1f%% of rekeying bandwidth\n",
		100*(one-ttCost)/one, 100*(one-qtCost)/one)

	// The analytic model's prediction for the same parameters.
	params := analytic.DefaultTwoPartitionParams()
	params.N = groupSize
	params.K = sPeriodK
	mOne, _ := params.CostOneKeyTree()
	mTT, _ := params.CostTT()
	mQT, _ := params.CostQT()
	fmt.Printf("analytic model predicts: TT %.1f%%, QT %.1f%%\n",
		100*(mOne-mTT)/mOne, 100*(mOne-mQT)/mOne)
}
