// Loss-aware key trees: the paper's second optimization (Section 4).
//
// A group where 20% of receivers sit behind a 20%-loss link and the rest
// lose 2% of packets is rekeyed over a simulated lossy multicast network
// with the WKA-BKR reliable rekey transport. The example compares three
// key-tree organizations — one mixed tree, two random trees, and two
// loss-homogenized trees — and shows that isolating the high-loss members
// into their own tree cuts transmitted rekey bandwidth.
//
// Run with: go run ./examples/lossaware
package main

import (
	"fmt"
	"log"

	"groupkey/internal/core"
	"groupkey/internal/keycrypt"
	"groupkey/internal/sim"
	"groupkey/internal/transport"
	"groupkey/internal/workload"
)

const (
	groupSize = 2048
	periods   = 80
	warmup    = 20
	highFrac  = 0.2
)

func main() {
	run := func(name string, scheme core.Scheme) float64 {
		tcfg := transport.DefaultConfig()
		tcfg.DefaultLoss = 0.05
		res, err := sim.Run(sim.Config{
			Seed:      11,
			GroupSize: groupSize,
			Periods:   periods,
			Tp:        60,
			Warmup:    warmup,
			Durations: workload.PaperDefault(),
			Loss:      workload.PaperLossModel(highFrac),
			Scheme:    scheme,
			Transport: transport.NewWKABKR(tcfg),
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-28s %9.1f transmitted keys/period (%.1f payload keys)\n",
			name, res.MeanTransportKeys, res.MeanMulticastKeys)
		return res.MeanTransportKeys
	}

	oneTree, err := core.NewOneTree(core.WithRand(keycrypt.NewDeterministicReader(1)))
	if err != nil {
		log.Fatal(err)
	}
	random2, err := core.NewRandomMultiTree(2, core.WithRand(keycrypt.NewDeterministicReader(2)))
	if err != nil {
		log.Fatal(err)
	}
	homog, err := core.NewLossHomogenized([]float64{0.05}, core.WithRand(keycrypt.NewDeterministicReader(3)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("lossy multicast: %d receivers, %.0f%% of them at 20%% loss, rest at 2%% (WKA-BKR transport)\n\n",
		groupSize, 100*highFrac)
	one := run("one mixed keytree", oneTree)
	rnd := run("two random keytrees", random2)
	hom := run("two loss-homogenized trees", homog)

	fmt.Printf("\nloss-homogenized vs one keytree:   %+.1f%%\n", 100*(one-hom)/one)
	fmt.Printf("random split vs one keytree:       %+.1f%% (the control: splitting alone does not help)\n",
		100*(one-rnd)/one)
}
