// Quickstart: the group key management library in five minutes.
//
// A key server manages a logical key tree (LKH); members join, the group is
// rekeyed in periodic batches, everyone converges on the group key, and a
// departed member is cryptographically locked out.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"groupkey/internal/core"
	"groupkey/internal/keycrypt"
	"groupkey/internal/keytree"
	"groupkey/internal/member"
)

func main() {
	// 1. The key server side: a single balanced LKH key tree (degree 4).
	scheme, err := core.NewOneTree(core.WithDegree(4))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Admit five members in one batched rekey. The returned payload
	// carries every encrypted key the server multicasts, plus each
	// joiner's individual key (the registration package).
	batch := core.Batch{}
	for id := 1; id <= 5; id++ {
		batch.Joins = append(batch.Joins, core.Join{ID: keytree.MemberID(id)})
	}
	rekey, err := scheme.ProcessBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted 5 members: %d encrypted keys multicast, epoch %d\n",
		rekey.MulticastKeyCount(), rekey.Epoch)

	// 3. The member side: bootstrap from the individual key, then decrypt
	// the payload to a fixpoint.
	clients := make(map[keytree.MemberID]*member.Member)
	for id, welcome := range rekey.Welcome {
		c := member.New(id, welcome)
		c.Apply(rekey.AllItems())
		clients[id] = c
	}
	groupKey, err := scheme.GroupKey()
	if err != nil {
		log.Fatal(err)
	}
	for id, c := range clients {
		if !c.Has(groupKey) {
			log.Fatalf("member %d failed to derive the group key", id)
		}
	}
	fmt.Printf("all members hold the group key %v\n", groupKey)

	// 4. Application data is sealed under the group key.
	frame, err := keycrypt.Seal(groupKey, []byte("movie frame #1"), nil)
	if err != nil {
		log.Fatal(err)
	}
	pt, err := keycrypt.Open(mustKey(clients[3], groupKey.ID), frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member 3 decrypted: %q\n", pt)

	// 5. Member 2 departs: one more batched rekey. Everyone else follows
	// the payload to the NEW group key; member 2 decrypts nothing.
	rekey2, err := scheme.ProcessBatch(core.Batch{Leaves: []keytree.MemberID{2}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member 2 evicted: %d encrypted keys multicast\n", rekey2.MulticastKeyCount())

	departed := clients[2]
	if n := departed.Apply(rekey2.AllItems()); n != 0 {
		log.Fatalf("forward secrecy broken: departed member decrypted %d items", n)
	}
	newGroupKey, _ := scheme.GroupKey()
	for id, c := range clients {
		if id == 2 {
			continue
		}
		c.Apply(rekey2.AllItems())
		if !c.Has(newGroupKey) {
			log.Fatalf("member %d lost the group", id)
		}
	}
	frame2, _ := keycrypt.Seal(newGroupKey, []byte("movie frame #2"), nil)
	if _, err := keycrypt.Open(mustKey(clients[1], newGroupKey.ID), frame2); err != nil {
		log.Fatal(err)
	}
	if _, ok := departed.Key(newGroupKey.ID); ok && departed.Has(newGroupKey) {
		log.Fatal("departed member holds the new group key")
	}
	fmt.Println("survivors rekeyed; departed member locked out — forward secrecy holds")
}

func mustKey(c *member.Member, id keycrypt.KeyID) keycrypt.Key {
	k, ok := c.Key(id)
	if !ok {
		log.Fatalf("member %d missing key %v", c.ID(), id)
	}
	return k
}
