// Adaptive scheme selection: the paper's Section 3.4 strategy, live.
//
// A key server starts a session on the plain one-keytree scheme, watches
// the lifetimes of departing members, fits the two-class churn model by
// EM, and asks the analytic model which organization is cheapest. The
// example then re-runs the same workload under the recommendation and
// reports the realized savings.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"groupkey/internal/adaptive"
	"groupkey/internal/core"
	"groupkey/internal/keycrypt"
	"groupkey/internal/sim"
	"groupkey/internal/workload"
)

const (
	groupSize = 4096
	periods   = 120
	warmup    = 30
)

func main() {
	durations := workload.PaperDefault() // the true (hidden) churn model

	// Phase 1: run the default one-keytree session and observe departures.
	oneTree, err := core.NewOneTree(core.WithRand(keycrypt.NewDeterministicReader(1)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Seed: 5, GroupSize: groupSize, Periods: periods, Tp: 60, Warmup: warmup,
		Durations: durations, Loss: workload.PaperLossModel(0.2), Scheme: oneTree,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session on one-keytree: %.1f keys/period\n", res.MeanMulticastKeys)

	// The server's trace: departed members' lifetimes. Here we sample the
	// same churn model the workload used, exactly what the server would
	// have logged.
	est := collectEstimate(durations)
	fmt.Printf("fitted churn model:     %v (truth: alpha=0.80 Ms=180s Ml=10800s)\n", est)
	fmt.Println("  note: Ml is censored low — members outliving the observation window never")
	fmt.Println("  produce a departure sample, so the advisor's predicted saving is conservative")

	// Phase 2: ask the advisor.
	advisor := adaptive.DefaultAdvisor()
	rec, err := advisor.Recommend(groupSize, est)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advisor:                %v\n", rec)
	if rec.Scheme == adaptive.ChooseOneTree {
		fmt.Println("nothing to switch to; done")
		return
	}

	// Phase 3: re-run the same workload under the recommendation.
	var scheme core.Scheme
	switch rec.Scheme {
	case adaptive.ChooseQT:
		scheme, err = core.NewTwoPartition(core.QT, rec.K, core.WithRand(keycrypt.NewDeterministicReader(2)))
	case adaptive.ChooseTT:
		scheme, err = core.NewTwoPartition(core.TT, rec.K, core.WithRand(keycrypt.NewDeterministicReader(2)))
	}
	if err != nil {
		log.Fatal(err)
	}
	res2, err := sim.Run(sim.Config{
		Seed: 5, GroupSize: groupSize, Periods: periods, Tp: 60, Warmup: warmup,
		Durations: durations, Loss: workload.PaperLossModel(0.2), Scheme: scheme,
	})
	if err != nil {
		log.Fatal(err)
	}
	saved := (res.MeanMulticastKeys - res2.MeanMulticastKeys) / res.MeanMulticastKeys
	fmt.Printf("session on %s: %.1f keys/period — %.1f%% below one-keytree (advisor predicted %.1f%%)\n",
		scheme.Name(), res2.MeanMulticastKeys, 100*saved, 100*rec.Reduction())
}

// collectEstimate simulates the server's departure log: lifetimes of the
// members who left during the observation window.
func collectEstimate(tc workload.TwoClass) adaptive.MixtureEstimate {
	session, err := workload.NewSession(workload.Config{
		Seed:        9,
		ArrivalRate: workload.ArrivalRateForGroupSize(groupSize, tc),
		Durations:   tc,
		Loss:        workload.PaperLossModel(0.2),
	})
	if err != nil {
		log.Fatal(err)
	}
	session.Prime(groupSize)
	est, err := adaptive.NewEstimator(8192)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range session.Events(float64(periods) * 60) {
		if ev.Kind != workload.EventLeave {
			continue
		}
		if info, ok := session.Member(ev.Member); ok {
			est.Observe(info.Duration)
		}
	}
	fit, err := est.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	return fit
}
