// Netgroup: a live secure-multicast group over TCP loopback.
//
// The example starts a key server daemon in-process, has members join over
// real sockets, broadcasts data sealed under the group key, evicts a
// member, and demonstrates that the evicted member can no longer decrypt
// the feed while everyone else keeps watching — the full system end to
// end: wire protocol, batched rekeying, member key stores.
//
// Run with: go run ./examples/netgroup
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"groupkey/internal/core"
	"groupkey/internal/keycrypt"
	"groupkey/internal/server"
	"groupkey/internal/wire"
)

const admitTimeout = 10 * time.Second

func main() {
	// Key server with a TT two-partition scheme, rekeying on demand.
	scheme, err := core.NewTwoPartition(core.TT, 2)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(scheme, nil)
	srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("key server on %s (scheme %s)\n", ln.Addr(), scheme.Name())

	// Three viewers join; admission happens at the next rekey.
	type joining struct {
		c   *server.Client
		err error
	}
	pending := make(chan joining, 3)
	for i := 0; i < 3; i++ {
		go func() {
			c, err := server.Dial(ln.Addr().String(), wire.JoinRequest{LossRate: 0.02}, admitTimeout)
			pending <- joining{c, err}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	if _, err := srv.RekeyNow(); err != nil {
		log.Fatal(err)
	}
	viewers := make([]*server.Client, 0, 3)
	for i := 0; i < 3; i++ {
		j := <-pending
		if j.err != nil {
			log.Fatal(j.err)
		}
		viewers = append(viewers, j.c)
		defer j.c.Close()
	}
	fmt.Printf("admitted %d members, group size %d\n", len(viewers), srv.Size())

	// Broadcast a frame: every viewer decrypts it.
	if err := srv.Broadcast([]byte("frame 1: opening scene")); err != nil {
		log.Fatal(err)
	}
	for _, v := range viewers {
		select {
		case msg := <-v.Data():
			fmt.Printf("member %d decrypted %q\n", v.ID(), msg)
		case <-time.After(admitTimeout):
			log.Fatalf("member %d never received frame 1", v.ID())
		}
	}

	// The first viewer is evicted (subscription lapsed).
	evicted := viewers[0]
	if err := evicted.Leave(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	rekey, err := srv.RekeyNow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member %d evicted: rekey epoch %d multicast %d keys\n",
		evicted.ID(), rekey.Epoch, rekey.MulticastKeyCount())

	// Remaining viewers catch the next frame; the evicted member cannot
	// decrypt data sealed under the new group key.
	for _, v := range viewers[1:] {
		if err := v.WaitEpoch(rekey.Epoch, admitTimeout); err != nil {
			log.Fatal(err)
		}
	}
	dek, err := scheme.GroupKey()
	if err != nil {
		log.Fatal(err)
	}
	frame2, err := keycrypt.Seal(dek, []byte("frame 2: members only"), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range viewers[1:] {
		if _, err := v.TryOpen(frame2); err != nil {
			log.Fatalf("member %d cannot decrypt frame 2: %v", v.ID(), err)
		}
		fmt.Printf("member %d decrypts frame 2\n", v.ID())
	}
	if _, err := evicted.TryOpen(frame2); err == nil {
		log.Fatal("evicted member decrypted frame 2 — forward secrecy broken")
	}
	fmt.Printf("member %d locked out of frame 2 — forward secrecy holds\n", evicted.ID())
}
