// Stateless pay-TV: the two stateless schemes from the paper's survey,
// composed the way real broadcast systems compose them.
//
//   - MARKS gates WHEN a device may watch: subscriptions are time-slot
//     intervals over a one-way seed tree; expiry is automatic, no rekey
//     messages ever.
//   - Subset-Difference gates WHO may watch: a compromised (cloned)
//     device is revoked with a ≤2r−1-subset broadcast that every other
//     device — even one that slept through every previous revocation —
//     decrypts with its factory key material.
//
// The content key for a slot is the Mix of the MARKS slot key and the
// SD session key, so a device needs BOTH a live subscription and
// non-revoked status.
//
// Run with: go run ./examples/stateless
package main

import (
	"errors"
	"fmt"
	"log"

	"groupkey/internal/keycrypt"
	"groupkey/internal/marks"
	"groupkey/internal/subsetdiff"
)

func main() {
	// Head-end setup: a 256-slot broadcast day, 64 manufactured devices.
	schedule, err := marks.NewServer(8, nil)
	if err != nil {
		log.Fatal(err)
	}
	devices, err := subsetdiff.NewServer(6, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Device 12's factory material and a subscription for slots 40–90.
	device, err := devices.ReceiverMaterial(12)
	if err != nil {
		log.Fatal(err)
	}
	subscription, err := schedule.Grant(40, 90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device 12: %d SD labels in ROM, %d MARKS seeds for slots 40–90\n",
		device.StorageLabels(), subscription.NodeCount())

	// The head-end's periodic SD broadcast (nobody revoked yet).
	sdKey := keycrypt.Random(500, 0)
	broadcast, err := devices.Revoke(sdKey, nil)
	if err != nil {
		log.Fatal(err)
	}

	contentKey := func(slot int, slotKey, sessionKey keycrypt.Key) keycrypt.Key {
		return keycrypt.Mix(keycrypt.KeyID(1<<56|uint64(slot)), 0, slotKey, sessionKey)
	}

	// Watching slot 60: in-window and non-revoked — both derivations work.
	watch := func(slot int) error {
		slotKey, err := subscription.SlotKey(slot)
		if err != nil {
			return err
		}
		sessionKey, err := device.Decrypt(broadcast)
		if err != nil {
			return err
		}
		// Verify against the head-end's view.
		serverSlot, err := schedule.SlotKey(slot)
		if err != nil {
			return err
		}
		got := contentKey(slot, slotKey, sessionKey)
		want := contentKey(slot, serverSlot, sdKey)
		if !got.Equal(want) {
			return errors.New("content key mismatch")
		}
		return nil
	}
	if err := watch(60); err != nil {
		log.Fatalf("in-window watch failed: %v", err)
	}
	fmt.Println("slot 60: device derives the content key (subscribed ∧ authorized)")

	// Outside the window: MARKS seeds cannot reach slot 91.
	if err := watch(91); !errors.Is(err, marks.ErrNotSubscribed) {
		log.Fatalf("slot 91 should be out of window, got %v", err)
	}
	fmt.Println("slot 91: blocked — subscription expired, zero rekey messages sent")

	// Device 12's card is cloned: emergency SD revocation mid-window.
	sdKey2 := keycrypt.Random(501, 0)
	broadcast2, err := devices.Revoke(sdKey2, []int{12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revocation broadcast: %d subsets for 1 revoked device (bound 1)\n",
		broadcast2.CoverSize())
	broadcast = broadcast2
	sdKey = sdKey2
	if err := watch(60); !errors.Is(err, subsetdiff.ErrRevoked) {
		log.Fatalf("revoked device should be locked out, got %v", err)
	}
	fmt.Println("slot 60 after revocation: blocked — in-window but no longer authorized")

	// Every other device keeps watching without any state update.
	other, err := devices.ReceiverMaterial(13)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := other.Decrypt(broadcast); err != nil {
		log.Fatalf("innocent device lost access: %v", err)
	}
	fmt.Println("device 13: unaffected, decrypts the new session key statelessly")
}
