// Command lkhsim runs one discrete rekeying simulation and prints
// per-period and aggregate statistics.
//
// Usage:
//
//	lkhsim -scheme tt -k 10 -n 4096 -periods 120
//	lkhsim -scheme losshomog -transport wkabkr -high 0.2
//
// Schemes: onetree, naive, qt, tt, pt, losshomog, random2.
// Transports: none, wkabkr, multisend, fec.
package main

import (
	"flag"
	"fmt"
	"os"

	"groupkey/internal/core"
	"groupkey/internal/keycrypt"
	"groupkey/internal/metrics"
	"groupkey/internal/sim"
	"groupkey/internal/transport"
	"groupkey/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lkhsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lkhsim", flag.ContinueOnError)
	schemeName := fs.String("scheme", "onetree", "onetree, naive, qt, tt, pt, losshomog, random2")
	transportName := fs.String("transport", "none", "none, wkabkr, multisend, fec")
	n := fs.Int("n", 4096, "steady-state group size")
	periods := fs.Int("periods", 100, "rekey periods")
	k := fs.Int("k", 10, "S-period K = Ts/Tp for qt/tt")
	alpha := fs.Float64("alpha", 0.8, "fraction of short-duration joins")
	high := fs.Float64("high", 0.2, "fraction of high-loss members")
	seed := fs.Uint64("seed", 1, "random seed")
	rekeyWorkers := fs.Int("rekey-workers", 0, "wrap-emission workers per rekey (0 = GOMAXPROCS, 1 = serial)")
	verbose := fs.Bool("v", false, "print per-period rows")
	saveTrace := fs.String("save-trace", "", "record the workload trace to this file")
	loadTrace := fs.String("load-trace", "", "replay a previously saved workload trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *saveTrace != "" && *loadTrace != "" {
		return fmt.Errorf("-save-trace and -load-trace are mutually exclusive")
	}

	rnd := core.WithRand(keycrypt.NewDeterministicReader(*seed))
	workers := core.WithRekeyWorkers(*rekeyWorkers)
	var scheme core.Scheme
	var err error
	switch *schemeName {
	case "onetree":
		scheme, err = core.NewOneTree(rnd, workers)
	case "naive":
		scheme, err = core.NewNaive(rnd)
	case "qt":
		scheme, err = core.NewTwoPartition(core.QT, *k, rnd, workers)
	case "tt":
		scheme, err = core.NewTwoPartition(core.TT, *k, rnd, workers)
	case "pt":
		scheme, err = core.NewTwoPartition(core.PT, *k, rnd, workers)
	case "losshomog":
		scheme, err = core.NewLossHomogenized([]float64{0.05}, rnd, workers)
	case "random2":
		scheme, err = core.NewRandomMultiTree(2, rnd, workers)
	default:
		return fmt.Errorf("unknown scheme %q", *schemeName)
	}
	if err != nil {
		return err
	}

	var proto transport.Protocol
	reg := metrics.NewRegistry()
	tmet := transport.NewMetrics(reg)
	tcfg := transport.DefaultConfig()
	tcfg.DefaultLoss = 0.05
	switch *transportName {
	case "none":
	case "wkabkr":
		p := transport.NewWKABKR(tcfg)
		p.Metrics = tmet
		proto = p
	case "multisend":
		p := transport.NewMultiSend(tcfg, 2)
		p.Metrics = tmet
		proto = p
	case "fec":
		p := transport.NewProactiveFEC(tcfg)
		p.Metrics = tmet
		proto = p
	default:
		return fmt.Errorf("unknown transport %q", *transportName)
	}

	durations := workload.PaperDefault()
	durations.Alpha = *alpha

	var trace *workload.Trace
	if *loadTrace != "" {
		f, err := os.Open(*loadTrace)
		if err != nil {
			return err
		}
		trace, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("replaying trace %s: %d members, %d events\n", *loadTrace, len(trace.Members), len(trace.Events))
	} else if *saveTrace != "" {
		session, err := workload.NewSession(workload.Config{
			Seed:        *seed,
			ArrivalRate: workload.ArrivalRateForGroupSize(float64(*n), durations),
			Durations:   durations,
			Loss:        workload.PaperLossModel(*high),
		})
		if err != nil {
			return err
		}
		trace = session.Record(*n, float64(*periods)*60)
		f, err := os.Create(*saveTrace)
		if err != nil {
			return err
		}
		if err := workload.WriteTrace(f, trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved trace to %s: %d members, %d events\n", *saveTrace, len(trace.Members), len(trace.Events))
	}

	res, err := sim.Run(sim.Config{
		Seed:      *seed,
		GroupSize: *n,
		Periods:   *periods,
		Tp:        60,
		Warmup:    *periods / 4,
		Durations: durations,
		Loss:      workload.PaperLossModel(*high),
		Trace:     trace,
		Scheme:    scheme,
		Transport: proto,
	})
	if err != nil {
		return err
	}

	if *verbose {
		fmt.Println("epoch  joins  leaves  size   mcast-keys  transport-keys  rounds")
		for _, p := range res.Periods {
			fmt.Printf("%5d  %5d  %6d  %5d  %10d  %14d  %6d\n",
				p.Epoch, p.Joins, p.Leaves, p.GroupSize, p.MulticastKeys, p.TransportKeys, p.Rounds)
		}
	}
	fmt.Printf("scheme=%s transport=%s N=%d periods=%d (warmup %d)\n",
		scheme.Name(), *transportName, *n, *periods, *periods/4)
	fmt.Printf("mean joins/period:      %8.1f\n", res.MeanJoins)
	fmt.Printf("mean leaves/period:     %8.1f\n", res.MeanLeaves)
	fmt.Printf("mean group size:        %8.1f\n", res.MeanGroupSize)
	fmt.Printf("mean multicast keys:    %8.1f\n", res.MeanMulticastKeys)
	if proto != nil {
		fmt.Printf("mean transport keys:    %8.1f\n", res.MeanTransportKeys)
	}

	// Per-period distributions: means hide the heavy tail that sizes the
	// server's multicast budget, so summarize the histograms too.
	keysHist := metrics.NewHistogram(metrics.ExponentialBuckets(1, 2, 16))
	for _, p := range res.Periods {
		keysHist.Observe(float64(p.MulticastKeys))
	}
	fmt.Printf("multicast keys/period:  %s\n", keysHist.Summary())
	throughputHist := metrics.NewHistogram(metrics.ExponentialBuckets(1024, 2, 16))
	for _, p := range res.Periods {
		if p.TotalKeys > 0 && p.RekeySeconds > 0 {
			throughputHist.Observe(float64(p.TotalKeys) / p.RekeySeconds)
		}
	}
	fmt.Printf("rekey keys/sec:         %s\n", throughputHist.Summary())
	if proto != nil {
		tkeysHist := metrics.NewHistogram(metrics.ExponentialBuckets(1, 2, 16))
		for _, p := range res.Periods {
			tkeysHist.Observe(float64(p.TransportKeys))
		}
		fmt.Printf("transport keys/period:  %s\n", tkeysHist.Summary())
		fmt.Printf("delivery rounds:        %s\n", tmet.Rounds.Summary())
		if *transportName == "wkabkr" {
			fmt.Printf("replication weight:     %s\n", tmet.ReplicationWeight.Summary())
		}
		if *transportName == "fec" {
			fmt.Printf("parity keys sent:       %d\n", tmet.ParityKeys.Value())
		}
		fmt.Printf("NACKs processed:        %d\n", tmet.NACKs.Value())
	}
	return nil
}
