package main

import (
	"path/filepath"
	"testing"
)

func TestRunSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulations are slow")
	}
	for _, scheme := range []string{"onetree", "naive", "qt", "tt", "pt", "losshomog", "random2"} {
		if err := run([]string{"-scheme", scheme, "-n", "128", "-periods", "8"}); err != nil {
			t.Errorf("-scheme %s: %v", scheme, err)
		}
	}
}

func TestRunWithTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulations are slow")
	}
	for _, tr := range []string{"wkabkr", "multisend", "fec"} {
		if err := run([]string{"-scheme", "onetree", "-transport", tr, "-n", "128", "-periods", "6"}); err != nil {
			t.Errorf("-transport %s: %v", tr, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run([]string{"-transport", "bogus"}); err == nil {
		t.Error("unknown transport accepted")
	}
	if err := run([]string{"-save-trace", "a", "-load-trace", "b"}); err == nil {
		t.Error("conflicting trace flags accepted")
	}
}

func TestRunTraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulations are slow")
	}
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := run([]string{"-scheme", "tt", "-n", "128", "-periods", "8", "-save-trace", path}); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := run([]string{"-scheme", "tt", "-n", "128", "-periods", "8", "-load-trace", path}); err != nil {
		t.Fatalf("load: %v", err)
	}
}
