package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "fig3", "fig5", "fig7", "multiclass", "advise", "oft", "interval"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Errorf("-exp %s: %v", exp, err)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-format", "csv"}); err != nil {
		t.Fatalf("csv: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSimExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	if err := run([]string{"-exp", "sim", "-n", "256", "-periods", "20"}); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if err := run([]string{"-exp", "fairness", "-n", "256", "-periods", "16"}); err != nil {
		t.Fatalf("fairness: %v", err)
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "fig5", "-o", dir}); err != nil {
		t.Fatalf("run with -o: %v", err)
	}
	for _, name := range []string{"fig5.txt", "fig5.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
		}
	}
}
