// Command lkhbench regenerates the paper's tables and figures.
//
// Usage:
//
//	lkhbench -exp all                 # every analytic table/figure
//	lkhbench -exp fig4                # one experiment
//	lkhbench -exp sim -n 2048         # model-vs-simulation cross-validation
//	lkhbench -exp fig6 -format csv    # machine-readable output
//	lkhbench -exp perf                # rekey-throughput benchmark + BENCH_rekey.json
//
// Experiments: table1 fig3 fig4 fig5 fig6 fig7 fec sim perf all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"groupkey/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lkhbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lkhbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id: table1, fig3..fig7, fec, multiclass, advise, oft, interval, problkh, related, sim, fairness, perf, all")
	format := fs.String("format", "text", "output format: text, csv, or chart (ASCII figure)")
	n := fs.Int("n", 2048, "group size for simulation cross-validation")
	periods := fs.Int("periods", 80, "rekey periods for simulation cross-validation")
	seed := fs.Uint64("seed", 1, "simulation seed")
	outDir := fs.String("o", "", "also write <id>.txt and <id>.csv artifacts into this directory")
	benchOut := fs.String("bench-out", "BENCH_rekey.json", "where -exp perf writes its JSON report")
	workers := fs.Int("rekey-workers", 0, "wrap workers for -exp perf (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tables []*experiments.Table
	switch *exp {
	case "all":
		ts, err := experiments.All()
		if err != nil {
			return err
		}
		tables = ts
	case "table1":
		tables = append(tables, experiments.Table1())
	case "fig3", "fig4", "fig5", "fig6", "fig7", "fec", "multiclass", "advise", "oft", "interval", "problkh", "related":
		builders := map[string]func() (*experiments.Table, error){
			"fig3": experiments.Fig3, "fig4": experiments.Fig4, "fig5": experiments.Fig5,
			"fig6": experiments.Fig6, "fig7": experiments.Fig7, "fec": experiments.FECGain,
			"multiclass": experiments.MultiClassTreeSweep, "advise": experiments.AdvisorDecisionTable,
			"oft": experiments.TwoPartitionOverOFT, "interval": experiments.RekeyIntervalSweep,
			"problkh": experiments.ProbabilisticLKHSweep, "related": experiments.RelatedSchemes,
		}
		t, err := builders[*exp]()
		if err != nil {
			return err
		}
		tables = append(tables, t)
	case "sim":
		cfg := experiments.SimConfig{Seed: *seed, N: *n, Periods: *periods, Warmup: *periods / 4}
		t1, err := experiments.SimTwoPartition(cfg)
		if err != nil {
			return err
		}
		t2, err := experiments.SimLossHomogenized(cfg)
		if err != nil {
			return err
		}
		t3, err := experiments.SimKSweep(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t1, t2, t3)
	case "fairness":
		cfg := experiments.SimConfig{Seed: *seed, N: *n, Periods: *periods, Warmup: *periods / 4}
		t1, err := experiments.FairnessReport(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t1)
	case "perf":
		cfg := experiments.DefaultPerfConfig()
		cfg.Seed = *seed
		cfg.Workers = *workers
		t, report, err := experiments.RekeyPerf(cfg)
		if err != nil {
			return err
		}
		if err := experiments.WritePerfReport(*benchOut, report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lkhbench: wrote %s\n", *benchOut)
		tables = append(tables, t)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	for _, t := range tables {
		var err error
		switch *format {
		case "csv":
			err = t.CSV(os.Stdout)
		case "chart":
			if x, ys, ok := experiments.DefaultChartColumns(t.ID); ok {
				err = t.Chart(os.Stdout, x, ys, 72, 18)
			} else {
				err = t.Fprint(os.Stdout)
			}
		default:
			err = t.Fprint(os.Stdout)
		}
		if err != nil {
			return err
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeArtifacts records one experiment's table as <id>.txt and <id>.csv.
func writeArtifacts(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, t.ID+".txt"))
	if err != nil {
		return err
	}
	if err := t.Fprint(txt); err != nil {
		txt.Close()
		return err
	}
	if err := txt.Close(); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.CSV(csv); err != nil {
		csv.Close()
		return err
	}
	return csv.Close()
}
