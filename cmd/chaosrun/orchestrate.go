package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"groupkey/internal/dst"
	"groupkey/internal/loadgen"
	"groupkey/internal/wanproxy"
	"groupkey/internal/workload"
)

// orchestrator runs one scenario: real keyserverd processes, wanproxy
// links per (region, node), real loadgen fleets per region, a fault
// timeline, and the SLO gate over the collected SOAK reports.
type orchestrator struct {
	sc         *Scenario
	keyserverd string
	loadgen    string
	dir        string // per-scenario artifact directory
	logf       func(format string, args ...any)

	nodeAddrs []string // real client addrs, node order
	replAddrs []string
	udpAddr   string // real UDP addr (standalone UDP scenarios)
	peersSpec string

	mu    sync.Mutex
	nodes []*proc
	// flash tracks burst fleets spawned by flashcrowd events.
	flash []*proc
	// links[region][node] is the shaped path from one region to one node.
	links map[string][]*wanproxy.Link
}

// proc is one managed child process, restartable in place.
type proc struct {
	name string
	bin  string
	args []string
	log  *os.File

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan error
}

func (p *proc) start() error {
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stdout = p.log
	cmd.Stderr = p.log
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", p.name, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	p.mu.Lock()
	p.cmd = cmd
	p.done = done
	p.mu.Unlock()
	return nil
}

func (p *proc) kill() {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill() // SIGKILL: no goodbye, exactly like a crash
		<-done
	}
}

// wait blocks until the current incarnation exits.
func (p *proc) wait() error {
	p.mu.Lock()
	done := p.done
	p.mu.Unlock()
	if done == nil {
		return nil
	}
	return <-done
}

// Summary is the scenario's machine-readable verdict, written alongside
// the per-region SOAK reports.
type Summary struct {
	Scenario      string          `json:"scenario"`
	Passed        bool            `json:"passed"`
	FaultPlanHash string          `json:"fault_plan_hash"`
	Regions       []RegionVerdict `json:"regions"`
}

// RegionVerdict is one region fleet's gated outcome.
type RegionVerdict struct {
	Region         string   `json:"region"`
	Report         string   `json:"report"`
	Passed         bool     `json:"passed"`
	Violations     []string `json:"violations,omitempty"`
	Joins          uint64   `json:"joins"`
	RekeysSeen     uint64   `json:"rekeys_seen"`
	MissedRekeys   uint64   `json:"missed_rekeys"`
	ProtocolErrors uint64   `json:"protocol_errors"`
	SpreadP99      float64  `json:"spread_p99_seconds"`
}

// run executes the scenario end to end and returns its summary.
func (o *orchestrator) run() (*Summary, error) {
	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return nil, err
	}

	// The canonical fault plan is written first so every fleet records
	// its hash, and `dstrun -replay` can re-execute the same faults
	// under the deterministic simulator.
	plan := o.sc.FaultPlan()
	art := &dst.Artifact{Plan: plan, PlanHash: plan.Hash(), Profile: o.sc.faultProfile()}
	planPath := filepath.Join(o.dir, "fault_plan.json")
	if err := art.WriteFile(planPath); err != nil {
		return nil, fmt.Errorf("writing fault plan: %w", err)
	}
	o.logf("scenario %s: fault plan %s (%d ops) -> %s", o.sc.Name, plan.Hash()[:12], len(plan.Ops), planPath)

	// Archive the flash-crowd churn trace when the timeline includes one,
	// so the exact synthetic workload is reproducible offline.
	for _, ev := range o.sc.Events {
		if ev.Kind != "flashcrowd" {
			continue
		}
		if err := o.writeFlashTrace(ev); err != nil {
			return nil, err
		}
		break
	}

	if err := o.startServers(); err != nil {
		o.teardown()
		return nil, err
	}
	if err := o.startLinks(); err != nil {
		o.teardown()
		return nil, err
	}
	defer o.teardown()

	fleetStart := time.Now()
	fleets, err := o.startFleets(planPath)
	if err != nil {
		return nil, err
	}
	stopEvents := o.scheduleEvents(fleetStart)
	defer stopEvents()

	// Fleets bound their own runtime via -duration; the grace covers
	// ramp, preflight, and final report writing.
	deadline := o.sc.Duration.D() + 90*time.Second
	fleetErrs := map[string]error{}
	for region, p := range fleets {
		errCh := make(chan error, 1)
		go func(p *proc) { errCh <- p.wait() }(p)
		select {
		case err := <-errCh:
			fleetErrs[region] = err
		case <-time.After(deadline):
			p.kill()
			fleetErrs[region] = fmt.Errorf("fleet did not finish within %v", deadline)
		}
	}

	return o.gate(fleetErrs)
}

// writeFlashTrace synthesizes and archives the flash-crowd membership
// trace matching a flashcrowd event.
func (o *orchestrator) writeFlashTrace(ev Event) error {
	members := ev.Members
	if members <= 0 {
		members = 100
	}
	tr, err := workload.SynthFlashCrowd(workload.FlashCrowdConfig{
		Seed:     o.sc.Seed,
		Baseline: members,
		Horizon:  o.sc.Duration.D().Seconds(),
		Crowd: workload.FlashCrowd{
			Start:  ev.At.D().Seconds(),
			RampUp: 2,
			Hold:   ev.For.D().Seconds(),
			Decay:  4,
			Peak:   8,
		},
	})
	if err != nil {
		return fmt.Errorf("synthesizing flash crowd: %w", err)
	}
	path := filepath.Join(o.dir, "flashcrowd.trace")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := workload.WriteTrace(f, tr); err != nil {
		return fmt.Errorf("writing flash crowd trace: %w", err)
	}
	o.logf("scenario %s: flash crowd trace (%d members, %d events) -> %s",
		o.sc.Name, len(tr.Members), len(tr.Events), path)
	return nil
}

// startServers launches the keyserverd topology: a standalone daemon, or
// a cluster whose node 0 starts first so it owns every shard (making
// "kill the primary" deterministic).
func (o *orchestrator) startServers() error {
	n := o.sc.Nodes
	o.nodeAddrs = make([]string, n)
	o.replAddrs = make([]string, n)
	for i := range o.nodeAddrs {
		addr, err := freePort("tcp")
		if err != nil {
			return err
		}
		o.nodeAddrs[i] = addr
		if n > 1 {
			if o.replAddrs[i], err = freePort("tcp"); err != nil {
				return err
			}
		}
	}
	if o.sc.UDP {
		addr, err := freePort("udp")
		if err != nil {
			return err
		}
		o.udpAddr = addr
	}

	if n == 1 {
		args := []string{
			"-listen", o.nodeAddrs[0],
			"-scheme", o.sc.Scheme,
			"-period", o.sc.Period.D().String(),
			"-state-dir", filepath.Join(o.dir, "state-a"),
			"-fsync", "never", // chaos gates on protocol correctness, not durability latency
		}
		if o.sc.Groups > 1 {
			args = append(args, "-groups", fmt.Sprint(o.sc.Groups))
		}
		if o.sc.UDP {
			args = append(args, "-udp", o.udpAddr)
		}
		p, err := o.spawn("keyserverd-a", o.keyserverd, args)
		if err != nil {
			return err
		}
		o.nodes = []*proc{p}
		return waitTCP(o.nodeAddrs[0], 15*time.Second)
	}

	var peers []string
	for i := 0; i < n; i++ {
		peers = append(peers, fmt.Sprintf("%s=%s=%s", nodeID(i), o.nodeAddrs[i], o.replAddrs[i]))
	}
	o.peersSpec = strings.Join(peers, ",")
	leaseDir := filepath.Join(o.dir, "leases")
	if err := os.MkdirAll(leaseDir, 0o755); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		args := []string{
			"-cluster-node", nodeID(i),
			"-cluster-peers", o.peersSpec,
			"-cluster-dir", leaseDir,
			"-state-dir", filepath.Join(o.dir, "state-"+nodeID(i)),
			"-groups", fmt.Sprint(o.sc.Groups),
			"-scheme", o.sc.Scheme,
			"-period", o.sc.Period.D().String(),
			"-lease-ttl", "1500ms",
			"-fsync", "never",
		}
		p, err := o.spawn("keyserverd-"+nodeID(i), o.keyserverd, args)
		if err != nil {
			return err
		}
		o.nodes = append(o.nodes, p)
		if err := waitTCP(o.nodeAddrs[i], 15*time.Second); err != nil {
			return err
		}
		if i == 0 {
			// Give node 0 a lease-acquisition head start: it becomes
			// primary for every shard, so kill-primary has a fixed target.
			time.Sleep(2 * time.Second)
		}
	}
	return nil
}

// startLinks builds the WAN topology: one shaped link per (region, node)
// pair, plus the UDP plane on region→node0 when enabled.
func (o *orchestrator) startLinks() error {
	o.links = make(map[string][]*wanproxy.Link)
	for ri, region := range o.sc.Regions {
		prof, _ := wanproxy.Named(region.Profile)
		for ni, real := range o.nodeAddrs {
			cfg := wanproxy.Config{
				Name:      fmt.Sprintf("%s/%s", region.Name, nodeID(ni)),
				ListenTCP: "127.0.0.1:0",
				TargetTCP: real,
				Profile:   prof,
				Seed:      o.sc.Seed + uint64(ri)*131 + uint64(ni),
				Logf:      o.logf,
			}
			if o.sc.UDP && ni == 0 {
				cfg.ListenUDP = "127.0.0.1:0"
				cfg.TargetUDP = o.udpAddr
			}
			link, err := wanproxy.Listen(cfg)
			if err != nil {
				return err
			}
			o.mu.Lock()
			o.links[region.Name] = append(o.links[region.Name], link)
			o.mu.Unlock()
		}
	}
	return nil
}

// fleetArgs assembles one region fleet's loadgen invocation. label is the
// report's region tag (the flash fleet reports as "<region>-flash").
func (o *orchestrator) fleetArgs(region Region, label string, members int, duration time.Duration, reportPath, planPath string, flash bool) []string {
	links := o.links[region.Name]
	fronts := make([]string, len(links))
	var addrMap []string
	for i, link := range links {
		fronts[i] = link.TCPAddr().String()
		addrMap = append(addrMap, o.nodeAddrs[i]+"="+fronts[i])
	}
	args := []string{
		"-server", strings.Join(fronts, ","),
		"-members", fmt.Sprint(members),
		"-groups", fmt.Sprint(o.sc.Groups),
		"-duration", duration.String(),
		"-seed", fmt.Sprint(o.sc.Seed),
		"-compress", fmt.Sprint(o.sc.Compress),
		"-report", reportPath,
		"-scenario", o.sc.Name,
		"-region", label,
		"-resume",
		"-preflight", "10s",
		"-fault-plan", planPath,
	}
	if o.sc.Nodes > 1 {
		args = append(args, "-addr-map", strings.Join(addrMap, ","))
	}
	if o.sc.UDP {
		args = append(args, "-udp", links[0].UDPAddr().String())
	}
	if flash {
		// A crowd joins fast and mostly leaves fast.
		args = append(args, "-ramp", fmt.Sprint(members), "-short", "30s", "-alpha", "0.95")
	} else if members > 50 {
		args = append(args, "-ramp", fmt.Sprint(members/2))
	}
	return args
}

// startFleets launches one loadgen process per region.
func (o *orchestrator) startFleets(planPath string) (map[string]*proc, error) {
	fleets := make(map[string]*proc)
	for _, region := range o.sc.Regions {
		reportPath := filepath.Join(o.dir, "SOAK_report_"+region.Name+".json")
		args := o.fleetArgs(region, region.Name, region.Members, o.sc.Duration.D(), reportPath, planPath, false)
		p, err := o.spawn("loadgen-"+region.Name, o.loadgen, args)
		if err != nil {
			return nil, err
		}
		fleets[region.Name] = p
	}
	return fleets, nil
}

// scheduleEvents arms the fault timeline; the returned func cancels
// pending events.
func (o *orchestrator) scheduleEvents(start time.Time) func() {
	var timers []*time.Timer
	for _, ev := range o.sc.Events {
		ev := ev
		delay := time.Until(start.Add(ev.At.D()))
		if delay < 0 {
			delay = 0
		}
		timers = append(timers, time.AfterFunc(delay, func() { o.fire(ev) }))
	}
	return func() {
		for _, t := range timers {
			t.Stop()
		}
	}
}

// fire executes one timeline event.
func (o *orchestrator) fire(ev Event) {
	switch ev.Kind {
	case "kill-primary":
		o.logf("event: SIGKILL primary %s", o.nodes[0].name)
		o.nodes[0].kill()
		restart := ev.RestartAfter.D()
		if restart <= 0 {
			restart = 2 * time.Second
		}
		time.AfterFunc(restart, func() {
			o.logf("event: restarting %s", o.nodes[0].name)
			if err := o.nodes[0].start(); err != nil {
				o.logf("event: restart failed: %v", err)
			}
		})
	case "flap":
		d := ev.For.D()
		if d <= 0 {
			d = time.Second
		}
		o.logf("event: flapping region %s for %v", ev.Region, d)
		for _, link := range o.links[ev.Region] {
			link.Flap(d)
		}
	case "squeeze":
		d := ev.For.D()
		if d <= 0 {
			d = time.Second
		}
		o.logf("event: squeezing region %s to %d B/s for %v", ev.Region, ev.Rate, d)
		for _, link := range o.links[ev.Region] {
			link := link
			orig := link.Profile().Rate
			link.SetRate(ev.Rate)
			time.AfterFunc(d, func() { link.SetRate(orig) })
		}
	case "flashcrowd":
		members := ev.Members
		if members <= 0 {
			members = 100
		}
		d := ev.For.D()
		if d <= 0 {
			d = 10 * time.Second
		}
		o.logf("event: flash crowd of %d joining region %s for %v", members, ev.Region, d)
		var region Region
		for _, r := range o.sc.Regions {
			if r.Name == ev.Region {
				region = r
			}
		}
		reportPath := filepath.Join(o.dir, "SOAK_report_"+region.Name+"-flash.json")
		args := o.fleetArgs(region, region.Name+"-flash", members, d, reportPath, filepath.Join(o.dir, "fault_plan.json"), true)
		p, err := o.spawn("loadgen-"+region.Name+"-flash", o.loadgen, args)
		if err != nil {
			o.logf("event: flash crowd failed to start: %v", err)
			return
		}
		o.mu.Lock()
		o.flash = append(o.flash, p)
		o.mu.Unlock()
	}
}

// gate decodes every region report, applies the scenario SLO, rewrites
// the reports with their embedded verdicts, and assembles the summary.
func (o *orchestrator) gate(fleetErrs map[string]error) (*Summary, error) {
	slo := loadgen.SLO{
		MaxProtocolErrors: 0, // always: chaos may be slow, never wrong
		MaxMissedRekeys:   o.sc.SLO.MaxMissed,
		MaxSpreadP99:      o.sc.SLO.MaxSpreadP99,
	}
	plan := o.sc.FaultPlan()
	sum := &Summary{Scenario: o.sc.Name, Passed: true, FaultPlanHash: plan.Hash()}
	regions := append([]string(nil), regionNames(o.sc)...)
	sort.Strings(regions)
	for _, name := range regions {
		reportPath := filepath.Join(o.dir, "SOAK_report_"+name+".json")
		verdict := RegionVerdict{Region: name, Report: reportPath}
		b, err := os.ReadFile(reportPath)
		if err != nil {
			verdict.Violations = append(verdict.Violations, fmt.Sprintf("no report: %v", err))
		} else if rep, err := loadgen.DecodeReport(b); err != nil {
			verdict.Violations = append(verdict.Violations, fmt.Sprintf("bad report: %v", err))
		} else {
			verdict.Joins = rep.Joins
			verdict.RekeysSeen = rep.RekeysSeen
			verdict.MissedRekeys = rep.MissedRekeys
			verdict.ProtocolErrors = rep.ProtocolErrors
			verdict.SpreadP99 = rep.RekeySpread.P99
			rep.Gate(slo)
			verdict.Violations = append(verdict.Violations, rep.SLOResult.Violations...)
			if rep.Joins == 0 || rep.RekeysSeen == 0 {
				verdict.Violations = append(verdict.Violations,
					fmt.Sprintf("no signal: joins=%d rekeys_seen=%d", rep.Joins, rep.RekeysSeen))
			}
			if rep.FaultPlanHash != sum.FaultPlanHash {
				verdict.Violations = append(verdict.Violations,
					fmt.Sprintf("fault plan hash mismatch: report %.12s vs scenario %.12s", rep.FaultPlanHash, sum.FaultPlanHash))
			}
			// Rewrite the report with its embedded verdict so the uploaded
			// artifact is self-describing.
			if enc, err := loadgen.EncodeReport(rep); err == nil {
				os.WriteFile(reportPath, enc, 0o644)
			}
		}
		if err := fleetErrs[name]; err != nil {
			verdict.Violations = append(verdict.Violations, fmt.Sprintf("fleet exit: %v", err))
		}
		verdict.Passed = len(verdict.Violations) == 0
		sum.Passed = sum.Passed && verdict.Passed
		sum.Regions = append(sum.Regions, verdict)
	}

	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(o.dir, "chaos_summary.json"), append(b, '\n'), 0o644); err != nil {
		return nil, err
	}
	return sum, nil
}

// spawn starts a logged child process.
func (o *orchestrator) spawn(name, bin string, args []string) (*proc, error) {
	logF, err := os.Create(filepath.Join(o.dir, name+".log"))
	if err != nil {
		return nil, err
	}
	p := &proc{name: name, bin: bin, args: args, log: logF}
	o.logf("starting %s: %s %s", name, bin, strings.Join(args, " "))
	if err := p.start(); err != nil {
		logF.Close()
		return nil, err
	}
	return p, nil
}

// teardown stops servers and links; fleets are reaped by run.
func (o *orchestrator) teardown() {
	o.mu.Lock()
	flash := o.flash
	o.mu.Unlock()
	for _, p := range flash {
		p.wait()
		p.log.Close()
	}
	for _, p := range o.nodes {
		p.kill()
		p.log.Close()
	}
	o.mu.Lock()
	links := o.links
	o.links = nil
	o.mu.Unlock()
	for _, ls := range links {
		for _, l := range ls {
			l.Close()
		}
	}
}

func regionNames(sc *Scenario) []string {
	var names []string
	for _, r := range sc.Regions {
		names = append(names, r.Name)
	}
	for _, ev := range sc.Events {
		if ev.Kind == "flashcrowd" {
			names = append(names, ev.Region+"-flash")
		}
	}
	return names
}

func nodeID(i int) string { return string(rune('a' + i)) }

// freePort reserves an ephemeral 127.0.0.1 port and releases it for the
// child process to claim.
func freePort(network string) (string, error) {
	if network == "udp" {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		addr := pc.LocalAddr().String()
		pc.Close()
		return addr, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// waitTCP polls until addr accepts a connection.
func waitTCP(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err == nil {
			conn.Close()
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not accepting connections within %v", addr, timeout)
}
