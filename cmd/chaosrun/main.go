// Command chaosrun drives WAN chaos scenarios over the real binaries: it
// launches a keyserverd cluster (or standalone daemon), places per-region
// loadgen fleets behind userspace WAN-shaping proxies (latency, jitter,
// Gilbert–Elliott burst loss, bandwidth caps — no root, no netem),
// injects mid-run faults (SIGKILL the primary, flap a region's link,
// squeeze its bandwidth, flash-crowd joins), and gates the per-region
// SOAK reports against the scenario's SLO: zero protocol errors, a
// delivery-spread p99 ceiling, and a missed-epoch ceiling.
//
// Usage:
//
//	chaosrun -scenario smoke                       # the per-PR CI pair
//	chaosrun -scenario nightly                     # the full matrix
//	chaosrun -scenario smoke-transcon -out chaos   # one builtin
//	chaosrun -scenario my_scenario.json            # a custom scenario file
//	chaosrun -list                                 # print the builtin matrix
//
// Every scenario derives a canonical dst fault plan; its artifact is
// written beside the reports and its hash is stamped into each
// SOAK_report.json, so an anomaly replays deterministically with
// `dstrun -replay <out>/<scenario>/fault_plan.json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaosrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaosrun", flag.ContinueOnError)
	scenarioFlag := fs.String("scenario", "smoke", "comma-separated scenarios: builtin names, the sets smoke|nightly, or JSON files")
	out := fs.String("out", "chaos_out", "artifact directory (per-scenario subdirectories)")
	keyserverdBin := fs.String("keyserverd", "", "path to the keyserverd binary (default: <bindir>/keyserverd)")
	loadgenBin := fs.String("loadgen", "", "path to the loadgen binary (default: <bindir>/loadgen)")
	binDir := fs.String("bindir", "bin", "directory holding the built binaries")
	list := fs.Bool("list", false, "print the builtin scenario matrix and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, sc := range builtins {
			sc.withDefaults()
			fmt.Printf("%-30s nodes=%d regions=%d members=%d duration=%v events=%d slo(p99<=%.1fs missed<=%d)\n",
				sc.Name, sc.Nodes, len(sc.Regions), sc.totalMembers(), sc.Duration.D(),
				len(sc.Events), sc.SLO.MaxSpreadP99, sc.SLO.MaxMissed)
		}
		return nil
	}

	scenarios, err := resolveScenarios(strings.Split(*scenarioFlag, ","))
	if err != nil {
		return err
	}
	ksd, err := resolveBin(*keyserverdBin, *binDir, "keyserverd")
	if err != nil {
		return err
	}
	lg, err := resolveBin(*loadgenBin, *binDir, "loadgen")
	if err != nil {
		return err
	}

	failed := 0
	for _, sc := range scenarios {
		o := &orchestrator{
			sc:         sc,
			keyserverd: ksd,
			loadgen:    lg,
			dir:        filepath.Join(*out, sc.Name),
			logf: func(format string, a ...any) {
				fmt.Printf("chaosrun: "+format+"\n", a...)
			},
		}
		fmt.Printf("chaosrun: === scenario %s: %d nodes, %d members in %d regions, %v ===\n",
			sc.Name, sc.Nodes, sc.totalMembers(), len(sc.Regions), sc.Duration.D())
		sum, err := o.run()
		if err != nil {
			fmt.Printf("chaosrun: scenario %s ERRORED: %v\n", sc.Name, err)
			failed++
			continue
		}
		printSummary(sum)
		if !sum.Passed {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d scenarios failed", failed, len(scenarios))
	}
	fmt.Printf("chaosrun: all %d scenarios passed\n", len(scenarios))
	return nil
}

func printSummary(sum *Summary) {
	status := "PASSED"
	if !sum.Passed {
		status = "FAILED"
	}
	fmt.Printf("chaosrun: scenario %s %s (fault plan %s)\n", sum.Scenario, status, sum.FaultPlanHash)
	for _, rv := range sum.Regions {
		mark := "ok"
		if !rv.Passed {
			mark = "FAIL"
		}
		fmt.Printf("chaosrun:   region %-18s %-4s joins=%d rekeys=%d missed=%d protoErrs=%d spreadP99=%.3fs\n",
			rv.Region, mark, rv.Joins, rv.RekeysSeen, rv.MissedRekeys, rv.ProtocolErrors, rv.SpreadP99)
		for _, v := range rv.Violations {
			fmt.Printf("chaosrun:     violation: %s\n", v)
		}
	}
	b, _ := json.Marshal(sum)
	fmt.Printf("chaosrun: summary: %s\n", b)
}

// resolveBin picks an explicit binary path or falls back to <bindir>/<name>.
func resolveBin(explicit, binDir, name string) (string, error) {
	path := explicit
	if path == "" {
		path = filepath.Join(binDir, name)
	}
	if _, err := os.Stat(path); err != nil {
		return "", fmt.Errorf("%s binary not found at %s (build it with: go build -o %s ./cmd/%s)",
			name, path, path, name)
	}
	return path, nil
}
