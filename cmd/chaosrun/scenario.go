package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"groupkey/internal/dst"
	"groupkey/internal/wanproxy"
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("1.5s") or a float number of seconds, so scenario JSON stays
// hand-editable.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(parsed)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("duration must be a string like \"1.5s\" or seconds: %w", err)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Region is one member population behind one WAN link profile.
type Region struct {
	// Name labels the region in reports and artifacts.
	Name string `json:"name"`
	// Profile is a wanproxy named profile (lan, transcon, intercon,
	// mobile-3g, satellite).
	Profile string `json:"profile"`
	// Members is this region's fleet size.
	Members int `json:"members"`
}

// Event is one mid-run fault injection.
type Event struct {
	// At schedules the event relative to fleet start.
	At Duration `json:"at"`
	// Kind is kill-primary, flap, squeeze, or flashcrowd.
	Kind string `json:"kind"`
	// Region targets flap/squeeze/flashcrowd at one region.
	Region string `json:"region,omitempty"`
	// For bounds flap/squeeze/flashcrowd duration.
	For Duration `json:"for,omitempty"`
	// Rate is the squeezed bandwidth in bytes/second.
	Rate int64 `json:"rate,omitempty"`
	// RestartAfter delays the killed primary's restart (default 2s).
	RestartAfter Duration `json:"restart_after,omitempty"`
	// Members sizes a flashcrowd burst fleet (default 100).
	Members int `json:"members,omitempty"`
}

// SLOSpec is the per-scenario gate. Protocol errors are always gated at
// zero — a chaos run may be slow, never wrong.
type SLOSpec struct {
	// MaxSpreadP99 caps the rekey delivery-spread p99 in seconds.
	MaxSpreadP99 float64 `json:"max_spread_p99_seconds"`
	// MaxMissed caps missed rekey epochs summed over a region's fleet.
	MaxMissed int64 `json:"max_missed_rekeys"`
}

// Scenario is one complete chaos run: topology, regions, workload shape,
// fault timeline, and the SLO gate.
type Scenario struct {
	Name string `json:"name"`
	// Nodes is the keyserverd cluster size (1 = standalone).
	Nodes int `json:"nodes"`
	// Groups hosted by the server/cluster.
	Groups int `json:"groups"`
	// Scheme is the key-management scheme (default tt).
	Scheme string `json:"scheme,omitempty"`
	// Period is the rekey period (default 300ms — compressed time).
	Period Duration `json:"period,omitempty"`
	// UDP enables the datagram rekey plane (standalone only).
	UDP bool `json:"udp,omitempty"`
	// Duration bounds the member fleets' run.
	Duration Duration `json:"duration"`
	// Seed makes churn, shaping, and the fault plan reproducible.
	Seed uint64 `json:"seed"`
	// Compress is the churn time-compression factor (default 200).
	Compress float64 `json:"compress,omitempty"`

	Regions []Region `json:"regions"`
	Events  []Event  `json:"events,omitempty"`
	SLO     SLOSpec  `json:"slo"`
}

// validate rejects scenarios the orchestrator cannot run.
func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario has no name")
	}
	if sc.Nodes < 1 {
		return fmt.Errorf("%s: nodes must be >= 1", sc.Name)
	}
	if sc.UDP && (sc.Nodes > 1 || sc.Groups > 1) {
		return fmt.Errorf("%s: the UDP rekey plane is standalone single-group only", sc.Name)
	}
	if sc.Duration.D() <= 0 {
		return fmt.Errorf("%s: duration must be positive", sc.Name)
	}
	if len(sc.Regions) == 0 {
		return fmt.Errorf("%s: no regions", sc.Name)
	}
	seen := map[string]bool{}
	for _, r := range sc.Regions {
		if r.Name == "" || r.Members <= 0 {
			return fmt.Errorf("%s: region %+v needs a name and members", sc.Name, r)
		}
		if seen[r.Name] {
			return fmt.Errorf("%s: duplicate region %q", sc.Name, r.Name)
		}
		seen[r.Name] = true
		if _, ok := wanproxy.Named(r.Profile); !ok {
			return fmt.Errorf("%s: region %q: unknown profile %q (want one of %v)",
				sc.Name, r.Name, r.Profile, wanproxy.ProfileNames())
		}
	}
	for _, ev := range sc.Events {
		switch ev.Kind {
		case "kill-primary":
			// Region-independent.
		case "flap", "squeeze", "flashcrowd":
			if !seen[ev.Region] {
				return fmt.Errorf("%s: event %s targets unknown region %q", sc.Name, ev.Kind, ev.Region)
			}
			if ev.Kind == "squeeze" && ev.Rate <= 0 {
				return fmt.Errorf("%s: squeeze needs a positive rate", sc.Name)
			}
		default:
			return fmt.Errorf("%s: unknown event kind %q", sc.Name, ev.Kind)
		}
		if ev.At.D() < 0 || ev.At.D() >= sc.Duration.D() {
			return fmt.Errorf("%s: event %s at %v falls outside the run", sc.Name, ev.Kind, ev.At.D())
		}
	}
	return nil
}

func (sc *Scenario) withDefaults() *Scenario {
	if sc.Groups <= 0 {
		sc.Groups = 1
	}
	if sc.Scheme == "" {
		sc.Scheme = "tt"
	}
	if sc.Period.D() <= 0 {
		sc.Period = Duration(300 * time.Millisecond)
	}
	if sc.Compress <= 0 {
		sc.Compress = 200
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	return sc
}

// totalMembers sums the steady-state fleets (flash crowds excluded).
func (sc *Scenario) totalMembers() int {
	n := 0
	for _, r := range sc.Regions {
		n += r.Members
	}
	return n
}

// FaultPlan derives the scenario's canonical dst fault plan: a
// deterministic mapping of the chaos timeline onto simulation ops, so the
// same faults replay under the deterministic simulator and the plan hash
// recorded in every SOAK report is `dstrun -replay`-able.
func (sc *Scenario) FaultPlan() dst.Plan {
	p := dst.Plan{
		Seed:     sc.Seed,
		Nodes:    sc.Nodes,
		Members:  12,
		Groups:   sc.Groups,
		Scheme:   sc.Scheme,
		K:        4,
		Duration: sc.Duration.D(),
		LeaseTTL: 2 * time.Second,
		Period:   500 * time.Millisecond,
		Loss:     0.05,
		Fsync:    "always",
	}
	if p.Duration > 30*time.Second {
		p.Duration = 30 * time.Second
	}
	for _, ev := range sc.Events {
		at := ev.At.D()
		if at >= p.Duration {
			continue
		}
		switch ev.Kind {
		case "kill-primary":
			restart := ev.RestartAfter.D()
			if restart <= 0 {
				restart = 2 * time.Second
			}
			p.Ops = append(p.Ops,
				dst.Op{At: at, Kind: dst.OpCrash, Node: 0},
				dst.Op{At: at + restart, Kind: dst.OpRestart, Node: 0})
		case "flap":
			d := ev.For.D()
			if d <= 0 {
				d = time.Second
			}
			p.Ops = append(p.Ops, dst.Op{At: at, Kind: dst.OpLossBurst, Grp: 0, Dur: d, Frac: 0.9})
		case "squeeze":
			d := ev.For.D()
			if d <= 0 {
				d = time.Second
			}
			p.Ops = append(p.Ops, dst.Op{At: at, Kind: dst.OpLossBurst, Grp: 0, Dur: d, Frac: 0.3})
		case "flashcrowd":
			// Workload, not a fault: no op.
		}
	}
	sort.SliceStable(p.Ops, func(i, j int) bool { return p.Ops[i].At < p.Ops[j].At })
	return p
}

// faultProfile labels the plan's artifact with the closest dst profile.
func (sc *Scenario) faultProfile() dst.Profile {
	hasCrash, hasLoss := false, false
	for _, ev := range sc.Events {
		switch ev.Kind {
		case "kill-primary":
			hasCrash = true
		case "flap", "squeeze":
			hasLoss = true
		}
	}
	switch {
	case hasCrash && hasLoss:
		return dst.ProfileMixed
	case hasCrash:
		return dst.ProfileCrash
	case hasLoss:
		return dst.ProfileMixed
	default:
		return dst.ProfileClean
	}
}

// builtins is the named scenario matrix. The two smoke-* scenarios are
// the per-PR CI gate; the full set is the nightly matrix.
//
// MaxMissed ceilings are calibrated, not aspirational: at period=300ms
// with compress=200 churn, short sessions on a high-latency UDP path
// legitimately observe epoch gaps (out-of-order shard arrival, NACK
// repairs landing after the next epoch). A fault-free two-region
// transcon run measures ~1200 missed on the WAN side and ~400 on the
// LAN side; ceilings sit at roughly 2x the faulted baseline so they
// catch delivery regressions without flaking on link physics.
// Protocol errors remain hard-gated at zero regardless.
var builtins = []*Scenario{
	{
		Name:     "smoke-transcon",
		Nodes:    1,
		UDP:      true,
		Duration: Duration(25 * time.Second),
		Seed:     101,
		Regions: []Region{
			{Name: "transcon", Profile: "transcon", Members: 120},
			{Name: "lan", Profile: "lan", Members: 80},
		},
		Events: []Event{
			{At: Duration(9 * time.Second), Kind: "flap", Region: "transcon", For: Duration(1500 * time.Millisecond)},
		},
		SLO: SLOSpec{MaxSpreadP99: 5, MaxMissed: 3000},
	},
	{
		Name:     "smoke-mobile-3g",
		Nodes:    3,
		Duration: Duration(30 * time.Second),
		Seed:     102,
		Regions: []Region{
			{Name: "mobile", Profile: "mobile-3g", Members: 120},
			{Name: "lan", Profile: "lan", Members: 80},
		},
		Events: []Event{
			{At: Duration(12 * time.Second), Kind: "kill-primary", RestartAfter: Duration(2500 * time.Millisecond)},
		},
		SLO: SLOSpec{MaxSpreadP99: 8, MaxMissed: 4000},
	},
	{
		Name:     "nightly-satellite-flashcrowd",
		Nodes:    1,
		UDP:      true,
		Duration: Duration(40 * time.Second),
		Seed:     201,
		Regions: []Region{
			{Name: "satellite", Profile: "satellite", Members: 100},
			{Name: "lan", Profile: "lan", Members: 100},
		},
		Events: []Event{
			{At: Duration(12 * time.Second), Kind: "flashcrowd", Region: "satellite", For: Duration(12 * time.Second), Members: 150},
		},
		SLO: SLOSpec{MaxSpreadP99: 8, MaxMissed: 6000},
	},
	{
		Name:     "nightly-intercon-squeeze",
		Nodes:    3,
		Duration: Duration(40 * time.Second),
		Seed:     202,
		Regions: []Region{
			{Name: "intercon", Profile: "intercon", Members: 150},
			{Name: "lan", Profile: "lan", Members: 50},
		},
		Events: []Event{
			{At: Duration(10 * time.Second), Kind: "squeeze", Region: "intercon", Rate: 256 << 10, For: Duration(8 * time.Second)},
			{At: Duration(24 * time.Second), Kind: "flap", Region: "intercon", For: Duration(2 * time.Second)},
		},
		SLO: SLOSpec{MaxSpreadP99: 10, MaxMissed: 6000},
	},
	{
		Name:     "nightly-multiregion-failover",
		Nodes:    3,
		Duration: Duration(45 * time.Second),
		Seed:     203,
		Regions: []Region{
			{Name: "transcon", Profile: "transcon", Members: 80},
			{Name: "intercon", Profile: "intercon", Members: 80},
			{Name: "mobile", Profile: "mobile-3g", Members: 60},
			{Name: "lan", Profile: "lan", Members: 40},
		},
		Events: []Event{
			{At: Duration(10 * time.Second), Kind: "flap", Region: "mobile", For: Duration(2 * time.Second)},
			{At: Duration(18 * time.Second), Kind: "kill-primary", RestartAfter: Duration(3 * time.Second)},
			{At: Duration(30 * time.Second), Kind: "squeeze", Region: "transcon", Rate: 512 << 10, For: Duration(6 * time.Second)},
		},
		SLO: SLOSpec{MaxSpreadP99: 10, MaxMissed: 8000},
	},
}

// resolveScenarios maps -scenario values onto concrete scenarios:
// builtin names, the sets "smoke" and "nightly" (every builtin), or a
// path to a scenario JSON file.
func resolveScenarios(names []string) ([]*Scenario, error) {
	byName := map[string]*Scenario{}
	for _, sc := range builtins {
		byName[sc.Name] = sc
	}
	var out []*Scenario
	for _, name := range names {
		switch {
		case name == "smoke":
			out = append(out, byName["smoke-transcon"], byName["smoke-mobile-3g"])
		case name == "nightly":
			out = append(out, builtins...)
		case byName[name] != nil:
			out = append(out, byName[name])
		default:
			b, err := os.ReadFile(name)
			if err != nil {
				return nil, fmt.Errorf("scenario %q is neither builtin (%v, smoke, nightly) nor a readable file: %w",
					name, builtinNames(), err)
			}
			var sc Scenario
			if err := json.Unmarshal(b, &sc); err != nil {
				return nil, fmt.Errorf("parsing scenario file %s: %w", name, err)
			}
			out = append(out, &sc)
		}
	}
	for _, sc := range out {
		if err := sc.withDefaults().validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func builtinNames() []string {
	names := make([]string, len(builtins))
	for i, sc := range builtins {
		names[i] = sc.Name
	}
	return names
}
