package main

import (
	"encoding/json"
	"testing"
	"time"

	"groupkey/internal/dst"
)

// Every builtin scenario validates and derives a replayable fault plan.
func TestBuiltinsValidate(t *testing.T) {
	for _, sc := range builtins {
		if err := sc.withDefaults().validate(); err != nil {
			t.Errorf("builtin %s: %v", sc.Name, err)
		}
		plan := sc.FaultPlan()
		if plan.Hash() != sc.FaultPlan().Hash() {
			t.Errorf("builtin %s: fault plan not deterministic", sc.Name)
		}
		if plan.Duration <= 0 || plan.Duration > 30*time.Second {
			t.Errorf("builtin %s: plan duration %v out of range", sc.Name, plan.Duration)
		}
	}
}

// The smoke set resolves to exactly the two per-PR scenarios.
func TestResolveScenarioSets(t *testing.T) {
	smoke, err := resolveScenarios([]string{"smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if len(smoke) != 2 || smoke[0].Name != "smoke-transcon" || smoke[1].Name != "smoke-mobile-3g" {
		t.Fatalf("smoke set: %+v", smoke)
	}
	nightly, err := resolveScenarios([]string{"nightly"})
	if err != nil {
		t.Fatal(err)
	}
	if len(nightly) != len(builtins) {
		t.Fatalf("nightly resolved %d scenarios, want %d", len(nightly), len(builtins))
	}
	if _, err := resolveScenarios([]string{"no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// Scenario JSON accepts both duration syntaxes and rejects bad shapes.
func TestScenarioJSON(t *testing.T) {
	raw := `{
		"name": "custom",
		"nodes": 1,
		"duration": "12s",
		"seed": 9,
		"regions": [{"name": "r1", "profile": "transcon", "members": 10}],
		"events": [{"at": 3.5, "kind": "flap", "region": "r1", "for": "1s"}],
		"slo": {"max_spread_p99_seconds": 4, "max_missed_rekeys": 10}
	}`
	var sc Scenario
	if err := json.Unmarshal([]byte(raw), &sc); err != nil {
		t.Fatal(err)
	}
	if sc.Duration.D() != 12*time.Second || sc.Events[0].At.D() != 3500*time.Millisecond {
		t.Fatalf("durations parsed as %v / %v", sc.Duration.D(), sc.Events[0].At.D())
	}
	if err := sc.withDefaults().validate(); err != nil {
		t.Fatal(err)
	}

	bad := []Scenario{
		{Name: "x", Nodes: 3, UDP: true, Duration: Duration(time.Second),
			Regions: []Region{{Name: "r", Profile: "lan", Members: 1}}},
		{Name: "x", Nodes: 1, Duration: Duration(time.Second),
			Regions: []Region{{Name: "r", Profile: "nope", Members: 1}}},
		{Name: "x", Nodes: 1, Duration: Duration(time.Second),
			Regions: []Region{{Name: "r", Profile: "lan", Members: 1}},
			Events:  []Event{{Kind: "flap", Region: "other"}}},
		{Name: "x", Nodes: 1, Duration: Duration(time.Second),
			Regions: []Region{{Name: "r", Profile: "lan", Members: 1}},
			Events:  []Event{{Kind: "squeeze", Region: "r"}}},
	}
	for i := range bad {
		if err := bad[i].withDefaults().validate(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

// The fault-plan mapping pins event kinds onto dst ops.
func TestFaultPlanMapping(t *testing.T) {
	sc := (&Scenario{
		Name:     "map",
		Nodes:    3,
		Duration: Duration(30 * time.Second),
		Seed:     5,
		Regions:  []Region{{Name: "r", Profile: "lan", Members: 10}},
		Events: []Event{
			{At: Duration(5 * time.Second), Kind: "kill-primary", RestartAfter: Duration(2 * time.Second)},
			{At: Duration(10 * time.Second), Kind: "flap", Region: "r", For: Duration(time.Second)},
			{At: Duration(15 * time.Second), Kind: "squeeze", Region: "r", Rate: 1024, For: Duration(time.Second)},
			{At: Duration(20 * time.Second), Kind: "flashcrowd", Region: "r", For: Duration(time.Second)},
		},
	}).withDefaults()
	if err := sc.validate(); err != nil {
		t.Fatal(err)
	}
	plan := sc.FaultPlan()
	kinds := make([]dst.OpKind, len(plan.Ops))
	for i, op := range plan.Ops {
		kinds[i] = op.Kind
	}
	want := []dst.OpKind{dst.OpCrash, dst.OpRestart, dst.OpLossBurst, dst.OpLossBurst}
	if len(kinds) != len(want) {
		t.Fatalf("ops %v, want kinds %v", plan.Ops, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op %d kind %s, want %s", i, kinds[i], want[i])
		}
	}
	if sc.faultProfile() != dst.ProfileMixed {
		t.Fatalf("profile %s, want mixed", sc.faultProfile())
	}
}
