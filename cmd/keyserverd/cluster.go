package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"groupkey/internal/cluster"
	"groupkey/internal/metrics"
	"groupkey/internal/store"
)

// clusterConfig carries the resolved flags into the clustered server path.
type clusterConfig struct {
	node          string
	peersSpec     string
	leaseDir      string
	shards        int
	groups        int
	scheme        store.SchemeConfig
	leaseTTL      time.Duration
	period        time.Duration
	metricsAddr   string
	stateDir      string
	fsyncMode     string
	snapshotEvery int
}

// runCluster runs this process as one node of a replicated cluster: a
// private state directory per node, a shared lease directory arbitrating
// shard ownership, and listeners taken from this node's entry in the peer
// spec.
func runCluster(cfg clusterConfig) error {
	if cfg.stateDir == "" {
		return fmt.Errorf("-cluster-node requires -state-dir (replication is built on the durable store)")
	}
	if cfg.leaseDir == "" {
		return fmt.Errorf("-cluster-node requires -cluster-dir (the shared lease directory)")
	}
	peers, err := cluster.ParsePeers(cfg.peersSpec)
	if err != nil {
		return err
	}
	self, ok := cluster.Peer{}, false
	for _, p := range peers {
		if p.ID == cluster.NodeID(cfg.node) {
			self, ok = p, true
		}
	}
	if !ok {
		return fmt.Errorf("-cluster-node %q not present in -cluster-peers", cfg.node)
	}
	fsyncPolicy, err := store.ParseFsyncPolicy(cfg.fsyncMode)
	if err != nil {
		return err
	}
	auth, err := cluster.NewDirAuthority(cfg.leaseDir)
	if err != nil {
		return err
	}

	var reg *metrics.Registry
	var clusterMetrics *cluster.Metrics
	var storeMetrics *store.Metrics
	if cfg.metricsAddr != "" {
		reg = metrics.NewRegistry()
		metrics.RegisterBuildInfo(reg)
		clusterMetrics = cluster.NewMetrics(reg)
		storeMetrics = store.NewMetrics(reg)
	}

	node, err := cluster.New(cluster.Config{
		Node:          cluster.NodeID(cfg.node),
		Peers:         peers,
		Shards:        cfg.shards,
		Groups:        cfg.groups,
		StateDir:      cfg.stateDir,
		Scheme:        cfg.scheme,
		LeaseTTL:      cfg.leaseTTL,
		Authority:     auth,
		SnapshotEvery: cfg.snapshotEvery,
		Fsync:         fsyncPolicy,
		Metrics:       clusterMetrics,
		StoreMetrics:  storeMetrics,
		Logf: func(format string, args ...any) {
			fmt.Printf("keyserverd: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	clientLn, err := net.Listen("tcp", self.ClientAddr)
	if err != nil {
		node.Close()
		return fmt.Errorf("client listener: %w", err)
	}
	replLn, err := net.Listen("tcp", self.ReplAddr)
	if err != nil {
		clientLn.Close()
		node.Close()
		return fmt.Errorf("replication listener: %w", err)
	}
	node.Start(clientLn, replLn)
	node.Registry().StartPeriodic(cfg.period)

	metricsLabel := "off"
	if reg != nil {
		mln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			node.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: metrics.Handler(reg, nil)}
		go msrv.Serve(mln)
		defer msrv.Close()
		metricsLabel = "http://" + mln.Addr().String() + "/metrics"
	}

	startedAt := time.Now()
	fmt.Printf("keyserverd: cluster node %s up: %d groups over %d shards, %d peers, clients on %s, replication on %s, lease ttl %v, metrics=%s\n",
		cfg.node, cfg.groups, cfg.shards, len(peers), clientLn.Addr(), replLn.Addr(), cfg.leaseTTL, metricsLabel)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	fmt.Printf("keyserverd: cluster node %s shutting down after %v\n",
		cfg.node, time.Since(startedAt).Round(time.Second))
	return node.Close()
}
