package main

import (
	"testing"

	"groupkey/internal/store"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run([]string{"-listen", "999.999.999.999:1"}); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-metrics", "999.999.999.999:1"}); err == nil {
		t.Error("unlistenable metrics address accepted")
	}
	if err := run([]string{"-group-scheme", "0=naive"}); err == nil {
		t.Error("-group-scheme accepted without -groups")
	}
	if err := run([]string{"-groups", "2", "-group-scheme", "5=naive", "-listen", "127.0.0.1:0"}); err == nil {
		t.Error("-group-scheme accepted for a group outside -groups")
	}
	if err := run([]string{"-groups", "2", "-listen", "999.999.999.999:1"}); err == nil {
		t.Error("multi-group path accepted an unlistenable address")
	}
}

func TestParseGroupSchemes(t *testing.T) {
	got, err := parseGroupSchemes("0=onetree, 7=tt", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d overrides, want 2", len(got))
	}
	if got[0].Kind != store.SchemeOneTree {
		t.Errorf("group 0 kind = %v", got[0].Kind)
	}
	if got[7].Kind != store.SchemeTT || got[7].SPeriodK != 4 {
		t.Errorf("group 7 = %+v", got[7])
	}
	if m, err := parseGroupSchemes("", 4); err != nil || m != nil {
		t.Errorf("empty spec: %v, %v", m, err)
	}
	for _, bad := range []string{"7", "x=tt", "7=bogus", "1=tt,1=qt"} {
		if _, err := parseGroupSchemes(bad, 4); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
