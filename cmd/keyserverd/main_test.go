package main

import "testing"

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run([]string{"-listen", "999.999.999.999:1"}); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-metrics", "999.999.999.999:1"}); err == nil {
		t.Error("unlistenable metrics address accepted")
	}
}
