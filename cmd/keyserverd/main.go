// Command keyserverd runs a group key server daemon over TCP: members join
// and leave via the wire protocol, the daemon rekeys periodically with the
// selected key-management scheme, and (optionally) multicasts a demo data
// feed sealed under the group key.
//
// Usage:
//
//	keyserverd -listen 127.0.0.1:7600 -scheme tt -k 10 -period 5s -feed 2s
//
// With -state-dir the daemon journals every membership batch to a
// write-ahead log and snapshots encrypted scheme state, so a crash or
// restart recovers the exact group keys without a whole-group rekey:
//
//	keyserverd -state-dir /var/lib/groupkey -fsync always -snapshot-every 64
//
// With -groups N the daemon hosts N independent groups (IDs 0..N-1)
// behind one listener: per-group schemes, signing keys, metrics labels
// and state namespaces (<state-dir>/<group>/). -group-scheme overrides
// the scheme for individual groups:
//
//	keyserverd -groups 64 -scheme tt -group-scheme "0=onetree,7=losshomog"
//
// With -cluster-node the daemon runs as one node of a replicated cluster:
// groups partition into -shards lease-owned shards, the owning primary
// streams its WAL to the other nodes, and any node redirects members to a
// group's current owner. Requires -state-dir (private per node) and
// -cluster-dir (shared lease directory):
//
//	keyserverd -cluster-node a -cluster-peers "a=:7601=:8601,b=:7602=:8602" \
//	    -cluster-dir /mnt/shared/leases -state-dir /var/lib/groupkey/a
package main

import (
	"encoding/pem"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"groupkey/internal/core"
	"groupkey/internal/metrics"
	"groupkey/internal/server"
	"groupkey/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "keyserverd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("keyserverd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7600", "TCP listen address")
	udpAddr := fs.String("udp", "", "UDP listen address for the datagram rekey plane (empty disables)")
	udpDrop := fs.Float64("udp-drop", 0, "fraction of outbound UDP packets to drop, for loss testing (0 disables)")
	udpDropSeed := fs.Int64("udp-drop-seed", 1, "seed for the deterministic -udp-drop schedule")
	schemeName := fs.String("scheme", "onetree", "onetree, naive, qt, tt, pt, losshomog")
	planner := fs.Bool("planner", false, "enable the cost-optimal batch placement planner on every key tree")
	k := fs.Int("k", 10, "S-period in rekey periods for qt/tt")
	period := fs.Duration("period", 5*time.Second, "rekey period Tp")
	feed := fs.Duration("feed", 0, "interval of the demo data feed (0 disables)")
	advise := fs.Duration("advise", 0, "interval for logging the adaptive scheme advisor (0 disables)")
	rotate := fs.Duration("rotate", 0, "interval for scheduled group-key rotation (0 disables)")
	tlsCertOut := fs.String("tls-cert-out", "", "serve TLS with a fresh self-signed certificate, writing its PEM here for clients to pin")
	metricsAddr := fs.String("metrics", "", "HTTP listen address for /metrics and /metrics.json (empty disables)")
	rekeyWorkers := fs.Int("rekey-workers", 0, "wrap-emission workers per rekey (0 = GOMAXPROCS, 1 = serial)")
	stateDir := fs.String("state-dir", "", "durable state directory: WAL + encrypted snapshots (empty = in-memory only)")
	stateKey := fs.String("state-key", "", "hex master key file for snapshot encryption (default <state-dir>/master.key, auto-generated)")
	fsyncMode := fs.String("fsync", "always", "WAL durability: always, interval or never")
	snapshotEvery := fs.Int("snapshot-every", 64, "snapshot after this many journaled operations (0 = only on shutdown)")
	sendqCap := fs.Int("sendq-cap", 0, "per-client send queue capacity in frames (0 = default 256)")
	sendqHigh := fs.Int("sendq-high", 0, "queue depth that sheds data frames (0 = 3/4 of capacity)")
	sendqLow := fs.Int("sendq-low", 0, "queue depth that ends shedding and forgives overflows (0 = 1/4 of high)")
	evictAfter := fs.Int("evict-after", 0, "consecutive queue overflows before a slow client is evicted (0 = default 3)")
	joinRate := fs.Float64("join-rate", 0, "sustained join admissions per second (0 = unlimited)")
	joinBurst := fs.Int("join-burst", 0, "join admission burst size (0 = max(1, join-rate))")
	maxPendingJoins := fs.Int("max-pending-joins", 0, "cap on joins awaiting the next rekey (0 = unlimited)")
	groups := fs.Int("groups", 1, "host this many independent groups (IDs 0..N-1) behind one listener")
	groupSchemes := fs.String("group-scheme", "", "per-group scheme overrides as comma-separated GROUP=SCHEME pairs")
	clusterNode := fs.String("cluster-node", "", "run as this node of a replicated cluster (ID from -cluster-peers; empty = standalone)")
	clusterPeers := fs.String("cluster-peers", "", "cluster membership as comma-separated ID=CLIENTADDR=REPLADDR[=ADVERTISE] records (ADVERTISE = address put in member redirects, e.g. a proxy front)")
	clusterDir := fs.String("cluster-dir", "", "shared lease directory arbitrating shard ownership across the cluster's processes")
	shards := fs.Int("shards", 1, "lease-ownership units the groups are distributed over (cluster mode)")
	leaseTTL := fs.Duration("lease-ttl", 3*time.Second, "shard lease duration; failover detection latency is about one TTL (cluster mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := store.ParseSchemeConfig(*schemeName, *k)
	if err != nil {
		return err
	}
	cfg.Planner = *planner
	workers := core.WithRekeyWorkers(*rekeyWorkers)

	overrides, err := parseGroupSchemes(*groupSchemes, *k)
	if err != nil {
		return err
	}
	for g := range overrides {
		o := overrides[g]
		o.Planner = *planner
		overrides[g] = o
	}
	if *udpAddr != "" && (*clusterNode != "" || *groups > 1) {
		return fmt.Errorf("-udp is only supported in single-group standalone mode")
	}
	if *clusterNode != "" {
		if len(overrides) > 0 {
			return fmt.Errorf("-group-scheme is not supported in cluster mode")
		}
		return runCluster(clusterConfig{
			node: *clusterNode, peersSpec: *clusterPeers, leaseDir: *clusterDir,
			shards: *shards, groups: *groups, scheme: cfg, leaseTTL: *leaseTTL,
			period: *period, metricsAddr: *metricsAddr, stateDir: *stateDir,
			fsyncMode: *fsyncMode, snapshotEvery: *snapshotEvery,
		})
	}
	if *groups > 1 {
		return runMulti(multiConfig{
			listen: *listen, groups: *groups, defaultScheme: cfg, overrides: overrides,
			k: *k, period: *period, feed: *feed, rotate: *rotate,
			tlsCertOut: *tlsCertOut, metricsAddr: *metricsAddr,
			rekeyWorkers: *rekeyWorkers, stateDir: *stateDir, fsyncMode: *fsyncMode,
			snapshotEvery: *snapshotEvery,
			policy: overloadPolicyFromFlags(*sendqCap, *sendqHigh, *sendqLow,
				*evictAfter, *joinRate, *joinBurst, *maxPendingJoins),
		})
	}
	if len(overrides) > 0 {
		return fmt.Errorf("-group-scheme requires -groups > 1")
	}

	// The metrics registry is created up front so the store can register
	// its durability series before recovery runs.
	var reg *metrics.Registry
	var tracer *metrics.RekeyTracer
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		metrics.RegisterBuildInfo(reg)
		tracer = metrics.NewRekeyTracer(256)
	}

	// Durable mode: recover (or create) the scheme on the state store and
	// reuse the persisted signing key. In-memory mode: build the scheme
	// directly, as before.
	var scheme core.Scheme
	var srv *server.Server
	var st *store.Store
	if *stateDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		var storeMetrics *store.Metrics
		if reg != nil {
			storeMetrics = store.NewMetrics(reg)
		}
		st, err = store.Open(*stateDir, store.Options{
			Fsync:         policy,
			KeyFile:       *stateKey,
			Metrics:       storeMetrics,
			SchemeOptions: []core.Option{workers},
		})
		if err != nil {
			return err
		}
		defer st.Close()
		res, err := st.Recover()
		if err != nil {
			return fmt.Errorf("recovering %s: %w", *stateDir, err)
		}
		if res.Scheme != nil {
			scheme = res.Scheme
			fmt.Printf("keyserverd: recovered %s from %s: %d members, snapshot seq %d, replayed %d batches + %d rotations, truncated %d torn bytes\n",
				scheme.Name(), *stateDir, scheme.Size(), res.SnapshotSeq,
				res.ReplayedBatches, res.ReplayedRotations, res.TruncatedBytes)
		} else {
			scheme, err = st.Create(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("keyserverd: created %s state in %s (fsync=%s)\n", scheme.Name(), *stateDir, policy)
		}
		srv = server.NewWithKey(scheme, nil, st.SigningKey())
		srv.Persist(st, *snapshotEvery)
		srv.SetNextID(res.NextID)
		if err := srv.SetLastRekey(res.LastRekey); err != nil {
			return err
		}
	} else {
		scheme, err = cfg.Build(workers)
		if err != nil {
			return err
		}
		srv = server.New(scheme, nil)
	}

	srv.SetOverloadPolicy(overloadPolicyFromFlags(*sendqCap, *sendqHigh, *sendqLow,
		*evictAfter, *joinRate, *joinBurst, *maxPendingJoins))

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}

	metricsLabel := "off"
	if reg != nil {
		m := server.NewMetrics(reg, tracer)
		resolved := *rekeyWorkers
		if resolved <= 0 {
			resolved = runtime.GOMAXPROCS(0)
		}
		m.SetWrapWorkers(resolved)
		srv.Instrument(m)
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: metrics.Handler(reg, tracer)}
		go msrv.Serve(mln)
		defer msrv.Close()
		metricsLabel = "http://" + mln.Addr().String() + "/metrics"
	}

	transportLabel := "tcp"
	if *tlsCertOut != "" {
		cert, leaf, err := server.GenerateTLSCert(nil)
		if err != nil {
			return err
		}
		pemBytes := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: leaf.Raw})
		if err := os.WriteFile(*tlsCertOut, pemBytes, 0o644); err != nil {
			return err
		}
		srv.ServeTLS(ln, cert)
		transportLabel = "tls (pin certificate from " + *tlsCertOut + ")"
	} else {
		srv.Serve(ln)
	}
	udpLabel := "off"
	if *udpAddr != "" {
		pc, err := net.ListenPacket("udp", *udpAddr)
		if err != nil {
			return fmt.Errorf("udp listener: %w", err)
		}
		ucfg := server.UDPConfig{}
		if *udpDrop > 0 {
			// Drop calls are serialized under the plane's send lock, so an
			// unguarded rand.Rand is safe here.
			rng := rand.New(rand.NewSource(*udpDropSeed))
			ucfg.Drop = func() bool { return rng.Float64() < *udpDrop }
		}
		srv.ServeUDP(pc, ucfg)
		udpLabel = pc.LocalAddr().String()
		if *udpDrop > 0 {
			udpLabel += fmt.Sprintf(" (dropping %.0f%%)", *udpDrop*100)
		}
	}
	srv.StartPeriodic(*period)
	startedAt := time.Now()
	fmt.Printf("keyserverd: scheme=%s k=%d period=%v listening on %s over %s, udp=%s, metrics=%s\n",
		scheme.Name(), *k, *period, ln.Addr(), transportLabel, udpLabel, metricsLabel)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	if *rotate > 0 {
		go func() {
			ticker := time.NewTicker(*rotate)
			defer ticker.Stop()
			for range ticker.C {
				if _, err := srv.RotateNow(); err != nil {
					continue // empty group or shutting down
				}
			}
		}()
	}

	if *advise > 0 {
		// Runtime adaptation from the advisor's churn fit — the planner's
		// churn hint and the two-partition S-period — changes which payloads
		// a batch produces, so it is only safe without a WAL: a durable
		// deployment must replay the log under the exact parameters it ran
		// with, and there the advisor stays log-only.
		tune := *stateDir == ""
		rekeyPeriod := *period
		go func() {
			ticker := time.NewTicker(*advise)
			defer ticker.Stop()
			for range ticker.C {
				rec, err := srv.Recommend(rekeyPeriod)
				if err != nil {
					fmt.Printf("advisor: waiting for churn data (%d departures observed)\n",
						srv.ObservedDepartures())
					continue
				}
				fmt.Printf("advisor: %v\n", rec)
				if !tune {
					continue
				}
				if hint, ok := srv.TunePlannerFromChurn(rekeyPeriod); ok {
					fmt.Printf("advisor: planner churn hint set to %d departures/batch\n", hint)
				}
				if rec.K > 0 && srv.SetSPeriod(rec.K) {
					fmt.Printf("advisor: S-period set to K=%d\n", rec.K)
				}
			}
		}()
	}

	if *feed > 0 {
		go func() {
			ticker := time.NewTicker(*feed)
			defer ticker.Stop()
			seq := 0
			for range ticker.C {
				seq++
				msg := fmt.Sprintf("frame %06d at %s", seq, time.Now().Format(time.RFC3339))
				if err := srv.Broadcast([]byte(msg)); err != nil {
					if err == server.ErrClosed {
						return
					}
					// No members yet: keep ticking.
					continue
				}
			}
		}()
	}

	<-stop
	fmt.Printf("keyserverd: shutting down after %v, %d rekeys, peak %d members\n",
		time.Since(startedAt).Round(time.Second), srv.TotalRekeys(), srv.PeakMembers())
	return srv.Close()
}
