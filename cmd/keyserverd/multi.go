package main

import (
	"encoding/pem"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"groupkey/internal/core"
	"groupkey/internal/metrics"
	"groupkey/internal/server"
	"groupkey/internal/store"
	"groupkey/internal/wire"
)

// overloadPolicyFromFlags derives the per-server overload policy from the
// flag values, shared by the single- and multi-group paths.
func overloadPolicyFromFlags(sendqCap, sendqHigh, sendqLow, evictAfter int,
	joinRate float64, joinBurst, maxPendingJoins int) server.OverloadPolicy {
	policy := server.DefaultOverloadPolicy()
	if sendqCap > 0 {
		policy.QueueCap = sendqCap
		// Re-derive the watermarks unless explicitly pinned below.
		policy.HighWatermark = 0
		policy.LowWatermark = 0
	}
	if sendqHigh > 0 {
		policy.HighWatermark = sendqHigh
	}
	if sendqLow > 0 {
		policy.LowWatermark = sendqLow
	}
	if evictAfter > 0 {
		policy.EvictAfter = evictAfter
	}
	policy.JoinRate = joinRate
	policy.JoinBurst = joinBurst
	policy.MaxPendingJoins = maxPendingJoins
	return policy
}

// parseGroupSchemes parses the -group-scheme value: comma-separated
// GROUP=SCHEME pairs, e.g. "0=onetree,7=losshomog".
func parseGroupSchemes(spec string, k int) (map[wire.GroupID]store.SchemeConfig, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[wire.GroupID]store.SchemeConfig)
	for _, pair := range strings.Split(spec, ",") {
		g, scheme, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("-group-scheme: %q is not GROUP=SCHEME", pair)
		}
		id, err := strconv.ParseUint(g, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("-group-scheme: bad group %q: %v", g, err)
		}
		cfg, err := store.ParseSchemeConfig(scheme, k)
		if err != nil {
			return nil, err
		}
		if _, dup := out[wire.GroupID(id)]; dup {
			return nil, fmt.Errorf("-group-scheme: group %d specified twice", id)
		}
		out[wire.GroupID(id)] = cfg
	}
	return out, nil
}

// multiConfig carries the resolved flags into the multi-group server path.
type multiConfig struct {
	listen        string
	groups        int
	defaultScheme store.SchemeConfig
	overrides     map[wire.GroupID]store.SchemeConfig
	k             int
	period        time.Duration
	feed          time.Duration
	rotate        time.Duration
	tlsCertOut    string
	metricsAddr   string
	rekeyWorkers  int
	stateDir      string
	fsyncMode     string
	snapshotEvery int
	policy        server.OverloadPolicy
}

// runMulti hosts cfg.groups independent groups behind one listener: a
// server.Registry with per-group schemes, signing keys, metrics views and
// state namespaces (<state-dir>/<group>/).
func runMulti(cfg multiConfig) error {
	for g := range cfg.overrides {
		if int(g) >= cfg.groups {
			return fmt.Errorf("-group-scheme: group %d outside -groups %d", g, cfg.groups)
		}
	}

	var reg *metrics.Registry
	var tracer *metrics.RekeyTracer
	var aggregate *server.Metrics
	if cfg.metricsAddr != "" {
		reg = metrics.NewRegistry()
		metrics.RegisterBuildInfo(reg)
		tracer = metrics.NewRekeyTracer(256)
		aggregate = server.NewMetrics(reg, tracer)
		resolved := cfg.rekeyWorkers
		if resolved <= 0 {
			resolved = runtime.GOMAXPROCS(0)
		}
		aggregate.SetWrapWorkers(resolved)
	}

	// Hosted set: 0..groups-1, plus any group with recovered state beyond
	// that range — shrinking -groups must not silently orphan durable
	// groups' members.
	hosted := make(map[wire.GroupID]bool, cfg.groups)
	for g := 0; g < cfg.groups; g++ {
		hosted[wire.GroupID(g)] = true
	}
	var fsyncPolicy store.FsyncPolicy
	var storeMetrics *store.Metrics
	if cfg.stateDir != "" {
		var err error
		fsyncPolicy, err = store.ParseFsyncPolicy(cfg.fsyncMode)
		if err != nil {
			return err
		}
		if reg != nil {
			storeMetrics = store.NewMetrics(reg)
		}
		if moved, err := store.MigrateLegacyLayout(cfg.stateDir); err != nil {
			return err
		} else if moved {
			fmt.Printf("keyserverd: migrated legacy state in %s into group 0\n", cfg.stateDir)
		}
		existing, err := store.ListGroupDirs(cfg.stateDir)
		if err != nil {
			return err
		}
		for _, g := range existing {
			hosted[g] = true
		}
	}
	ids := make([]wire.GroupID, 0, len(hosted))
	for g := range hosted {
		ids = append(ids, g)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	registry := server.NewRegistry()
	var stores []*store.Store
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	recovered := 0
	for _, g := range ids {
		schemeCfg := cfg.defaultScheme
		if o, ok := cfg.overrides[g]; ok {
			schemeCfg = o
		}
		opts := []core.Option{
			core.WithRekeyWorkers(cfg.rekeyWorkers),
			core.WithKeyIDBase(store.GroupKeyIDBase(g)),
		}
		var srv *server.Server
		if cfg.stateDir != "" {
			st, err := store.Open(store.GroupDir(cfg.stateDir, g), store.Options{
				Fsync:         fsyncPolicy,
				Metrics:       storeMetrics,
				SchemeOptions: opts,
			})
			if err != nil {
				return fmt.Errorf("group %d: %w", g, err)
			}
			stores = append(stores, st)
			res, err := st.Recover()
			if err != nil {
				return fmt.Errorf("group %d: recovering: %w", g, err)
			}
			scheme := res.Scheme
			if scheme != nil {
				recovered++
			} else {
				scheme, err = st.Create(schemeCfg)
				if err != nil {
					return fmt.Errorf("group %d: %w", g, err)
				}
			}
			srv = server.NewWithKey(scheme, nil, st.SigningKey())
			srv.Persist(st, cfg.snapshotEvery)
			srv.SetNextID(res.NextID)
			if err := srv.SetLastRekey(res.LastRekey); err != nil {
				return fmt.Errorf("group %d: %w", g, err)
			}
		} else {
			scheme, err := schemeCfg.Build(opts...)
			if err != nil {
				return fmt.Errorf("group %d: %w", g, err)
			}
			srv = server.New(scheme, nil)
		}
		srv.SetOverloadPolicy(cfg.policy)
		if aggregate != nil {
			srv.Instrument(aggregate.ForGroup(g))
		}
		if err := registry.Add(g, srv); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}

	metricsLabel := "off"
	if reg != nil {
		mln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: metrics.Handler(reg, tracer)}
		go msrv.Serve(mln)
		defer msrv.Close()
		metricsLabel = "http://" + mln.Addr().String() + "/metrics"
	}

	transportLabel := "tcp"
	if cfg.tlsCertOut != "" {
		cert, leaf, err := server.GenerateTLSCert(nil)
		if err != nil {
			return err
		}
		pemBytes := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: leaf.Raw})
		if err := os.WriteFile(cfg.tlsCertOut, pemBytes, 0o644); err != nil {
			return err
		}
		registry.ServeTLS(ln, cert)
		transportLabel = "tls (pin certificate from " + cfg.tlsCertOut + ")"
	} else {
		registry.Serve(ln)
	}
	registry.StartPeriodic(cfg.period)
	startedAt := time.Now()
	fmt.Printf("keyserverd: hosting %d groups (%d recovered) scheme=%s k=%d period=%v listening on %s over %s, metrics=%s\n",
		len(ids), recovered, cfg.defaultScheme.Kind, cfg.k, cfg.period, ln.Addr(), transportLabel, metricsLabel)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	if cfg.rotate > 0 {
		go func() {
			ticker := time.NewTicker(cfg.rotate)
			defer ticker.Stop()
			for range ticker.C {
				for _, g := range registry.Groups() {
					if srv := registry.Get(g); srv != nil {
						_, _ = srv.RotateNow() // empty group or shutting down
					}
				}
			}
		}()
	}

	if cfg.feed > 0 {
		go func() {
			ticker := time.NewTicker(cfg.feed)
			defer ticker.Stop()
			seq := 0
			for range ticker.C {
				seq++
				for _, g := range registry.Groups() {
					srv := registry.Get(g)
					if srv == nil {
						continue
					}
					msg := fmt.Sprintf("group %d frame %06d at %s", g, seq, time.Now().Format(time.RFC3339))
					if err := srv.Broadcast([]byte(msg)); err == server.ErrClosed {
						return
					}
				}
			}
		}()
	}

	<-stop
	var totalRekeys uint64
	peak := 0
	for _, g := range registry.Groups() {
		if srv := registry.Get(g); srv != nil {
			totalRekeys += srv.TotalRekeys()
			peak += srv.PeakMembers()
		}
	}
	fmt.Printf("keyserverd: shutting down after %v, %d rekeys across %d groups, peak %d members total\n",
		time.Since(startedAt).Round(time.Second), totalRekeys, len(ids), peak)
	return registry.Close()
}
