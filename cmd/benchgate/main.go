// Command benchgate compares a freshly measured rekey benchmark report
// against the committed baseline and fails when throughput regressed —
// the CI performance gate.
//
// Usage:
//
//	benchgate -baseline BENCH_rekey.json -candidate BENCH_rekey.new.json -max-regress 0.25
//
// Each (variant, group_size) pair in the baseline must be present in the
// candidate with keys/sec no more than -max-regress below the baseline.
// Improvements always pass; the tool prints a ratio table either way so
// the CI log doubles as a trend record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"groupkey/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

type key struct {
	variant string
	size    int
}

func load(path string) (*experiments.PerfReport, map[key]experiments.PerfResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rep experiments.PerfReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, nil, fmt.Errorf("%s has no results", path)
	}
	out := make(map[key]experiments.PerfResult, len(rep.Results))
	for _, r := range rep.Results {
		if r.KeysPerSec <= 0 {
			return nil, nil, fmt.Errorf("%s: %s N=%d has non-positive keys/sec %v",
				path, r.Variant, r.GroupSize, r.KeysPerSec)
		}
		out[key{r.Variant, r.GroupSize}] = r
	}
	return &rep, out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	basePath := fs.String("baseline", "BENCH_rekey.json", "committed baseline report")
	candPath := fs.String("candidate", "BENCH_rekey.new.json", "freshly measured report")
	maxRegress := fs.Float64("max-regress", 0.25, "largest tolerated fractional keys/sec drop")
	minSparse := fs.Float64("min-sparse-reduction", 0,
		"floor on full/sparse broadcast bytes-per-member reduction (0 disables the check)")
	minPlanner := fs.Float64("min-planner-reduction", 0,
		"floor on the placement planner's shrink-regime wraps/batch reduction percent; every regime must also be >= 0 (0 disables the check)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxRegress < 0 || *maxRegress >= 1 {
		return fmt.Errorf("-max-regress must be in [0,1), got %v", *maxRegress)
	}

	_, base, err := load(*basePath)
	if err != nil {
		return err
	}
	candRep, cand, err := load(*candPath)
	if err != nil {
		return err
	}

	floor := 1 - *maxRegress
	var failures []string
	fmt.Printf("%-10s %10s %14s %14s %8s\n", "variant", "group", "baseline k/s", "candidate k/s", "ratio")
	for _, b := range sortedKeys(base) {
		br := base[b]
		cr, ok := cand[b]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s N=%d missing from candidate", b.variant, b.size))
			continue
		}
		ratio := cr.KeysPerSec / br.KeysPerSec
		mark := ""
		if ratio < floor {
			mark = "  REGRESSED"
			failures = append(failures, fmt.Sprintf("%s N=%d: %.0f -> %.0f keys/sec (%.0f%% of baseline, floor %.0f%%)",
				b.variant, b.size, br.KeysPerSec, cr.KeysPerSec, ratio*100, floor*100))
		}
		fmt.Printf("%-10s %10d %14.0f %14.0f %7.2fx%s\n",
			b.variant, b.size, br.KeysPerSec, cr.KeysPerSec, ratio, mark)
	}
	if *minSparse > 0 {
		if len(candRep.Fanout) == 0 {
			failures = append(failures, fmt.Sprintf("%s has no fan-out measurements but -min-sparse-reduction=%v was requested",
				*candPath, *minSparse))
		}
		for _, fo := range candRep.Fanout {
			mark := ""
			if fo.Reduction < *minSparse {
				mark = "  BELOW FLOOR"
				failures = append(failures, fmt.Sprintf("fan-out N=%d: %.0f -> %.1f B/member is only %.2fx, floor %.2fx",
					fo.GroupSize, fo.FullBytesPerMember, fo.SparseBytesPerMember, fo.Reduction, *minSparse))
			}
			fmt.Printf("%-10s %10d %14.0f %14.1f %7.2fx%s\n",
				"fanout", fo.GroupSize, fo.FullBytesPerMember, fo.SparseBytesPerMember, fo.Reduction, mark)
		}
	}
	if *minPlanner > 0 {
		if len(candRep.Planner) == 0 {
			failures = append(failures, fmt.Sprintf("%s has no planner series but -min-planner-reduction=%v was requested",
				*candPath, *minPlanner))
		}
		for _, pr := range candRep.Planner {
			floor := 0.0
			if pr.Regime == "shrink" {
				floor = *minPlanner
			}
			mark := ""
			if pr.ReductionPct < floor {
				mark = "  BELOW FLOOR"
				failures = append(failures, fmt.Sprintf("planner %s: %.1f -> %.1f wraps/batch is %.2f%%, floor %.2f%%",
					pr.Regime, pr.GreedyPerBatch, pr.PlannerPerBatch, pr.ReductionPct, floor))
			}
			fmt.Printf("%-10s %10s %14.1f %14.1f %6.2f%%%s\n",
				"planner", pr.Regime, pr.GreedyPerBatch, pr.PlannerPerBatch, pr.ReductionPct, mark)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		return fmt.Errorf("%d check(s) failed", len(failures))
	}
	fmt.Printf("benchgate: all %d series within %.0f%% of baseline\n", len(base), *maxRegress*100)
	return nil
}

// sortedKeys orders series variant-then-size so the table is stable.
func sortedKeys(m map[key]experiments.PerfResult) []key {
	keys := make([]key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if a.variant < b.variant || (a.variant == b.variant && a.size <= b.size) {
				break
			}
			keys[j-1], keys[j] = b, a
		}
	}
	return keys
}
