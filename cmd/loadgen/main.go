// Command loadgen soaks a running keyserverd with churning synthetic
// members and writes a machine-readable report of rekey delivery,
// admission deferrals, and protocol errors.
//
// Usage:
//
//	loadgen -server 127.0.0.1:7600 -members 200 -duration 30s -report SOAK_report.json
//
// The churn model is the paper's two-class membership mix (-alpha,
// -short, -long), time-compressed by -compress so hours of realistic
// churn replay within the run. With -fail-on-errors the exit status is
// nonzero when any protocol error was observed — the CI soak gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"groupkey/internal/dst"
	"groupkey/internal/loadgen"
	"groupkey/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("server", "127.0.0.1:7600", "key server address, or a comma-separated list of cluster node addresses")
	members := fs.Int("members", 100, "concurrent member slots to sustain")
	groups := fs.Int("groups", 1, "spread slots round-robin across hosted groups 0..N-1")
	duration := fs.Duration("duration", 30*time.Second, "how long to run")
	seed := fs.Uint64("seed", 1, "churn schedule seed")
	reportPath := fs.String("report", "SOAK_report.json", "report output path (- for stdout)")
	alpha := fs.Float64("alpha", 0.8, "fraction of short-lived members")
	shortMean := fs.Duration("short", 3*time.Minute, "mean stay of the short class (before compression)")
	longMean := fs.Duration("long", 3*time.Hour, "mean stay of the long class (before compression)")
	compress := fs.Float64("compress", 100, "time compression factor for stays")
	loss := fs.Float64("loss", -1, "loss rate reported at join (-1 = unknown)")
	udpAddr := fs.String("udp", "", "server UDP address; every session subscribes to the datagram rekey plane (empty = TCP only)")
	joinTimeout := fs.Duration("join-timeout", 30*time.Second, "how long to wait for admission")
	ramp := fs.Float64("ramp", 0, "stagger initial joins to this many per second (0 = all at once)")
	resume := fs.Bool("resume", false, "resume sessions after unexpected disconnects")
	minStay := fs.Duration("min-stay", 100*time.Millisecond, "floor on sampled stays")
	failOnErrors := fs.Bool("fail-on-errors", false, "exit nonzero if any protocol error was observed")
	faultPlan := fs.String("fault-plan", "", "dst fault plan or failure artifact (JSON) whose hash is recorded in the report for replay bookkeeping")
	scenario := fs.String("scenario", "", "chaos scenario name recorded in the report")
	region := fs.String("region", "", "WAN region name recorded in the report")
	addrMap := fs.String("addr-map", "", "redirect rewrites as comma-separated REAL=LOCAL pairs: cluster redirects naming REAL are re-dialed at LOCAL (this fleet's proxy front)")
	preflight := fs.Duration("preflight", 0, "verify every -server endpoint is reachable (and its proxy backend alive) within this timeout before starting; 0 = skip")
	sloSpreadP99 := fs.Float64("slo-spread-p99", 0, "SLO: fail if rekey delivery spread p99 exceeds this many seconds (0 = ungated)")
	sloMissed := fs.Int64("slo-missed", -1, "SLO: fail if missed rekeys exceed this count (-1 = ungated)")
	sloErrors := fs.Int64("slo-errors", -1, "SLO: fail if protocol errors exceed this count (-1 = ungated)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	planHash := ""
	if *faultPlan != "" {
		h, err := faultPlanHash(*faultPlan)
		if err != nil {
			return fmt.Errorf("-fault-plan: %w", err)
		}
		planHash = h
	}

	churn := workload.TwoClass{
		Alpha: *alpha,
		Short: workload.Exponential{M: shortMean.Seconds()},
		Long:  workload.Exponential{M: longMean.Seconds()},
	}.Compressed(*compress)

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	fmt.Printf("loadgen: soaking %s with %d members across %d groups for %v (seed %d, compress %.0fx)\n",
		*addr, *members, *groups, *duration, *seed, *compress)
	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	rewrites, err := parseAddrMap(*addrMap)
	if err != nil {
		return fmt.Errorf("-addr-map: %w", err)
	}
	if *preflight > 0 {
		if err := loadgen.Preflight(addrs, *preflight); err != nil {
			return err
		}
		fmt.Printf("loadgen: preflight ok for %d endpoints\n", len(addrs))
	}
	r := loadgen.New(loadgen.Config{
		Addrs:       addrs,
		AddrMap:     rewrites,
		Scenario:    *scenario,
		Region:      *region,
		Members:     *members,
		Groups:      *groups,
		Duration:    *duration,
		Seed:        *seed,
		Churn:       churn,
		LossRate:    *loss,
		UDPAddr:     *udpAddr,
		JoinTimeout: *joinTimeout,
		RampPerSec:  *ramp,
		Resume:      *resume,
		MinStay:     *minStay,

		FaultPlanHash: planHash,
	})
	rep, err := r.Run(ctx)
	if err != nil {
		return err
	}

	sloGated := *sloSpreadP99 > 0 || *sloMissed >= 0 || *sloErrors >= 0
	sloPassed := true
	if sloGated {
		sloPassed = rep.Gate(loadgen.SLO{
			MaxProtocolErrors: *sloErrors,
			MaxMissedRekeys:   *sloMissed,
			MaxSpreadP99:      *sloSpreadP99,
		})
	}

	b, err := loadgen.EncodeReport(rep)
	if err != nil {
		return err
	}
	if *reportPath == "-" {
		os.Stdout.Write(b)
	} else {
		if err := os.WriteFile(*reportPath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("loadgen: report written to %s\n", *reportPath)
	}

	fmt.Printf("loadgen: %d joins (%d deferred, %d errors), %d leaves, %d disconnects, %d resumes (%d failed)\n",
		rep.Joins, rep.JoinsDeferred, rep.JoinErrors, rep.Leaves, rep.Disconnects, rep.Resumes, rep.ResumeFailures)
	fmt.Printf("loadgen: %d rekeys seen (final epoch %d, %d missed), join p95 %.1fms, spread p95 %.1fms\n",
		rep.RekeysSeen, rep.FinalEpoch, rep.MissedRekeys,
		rep.JoinLatency.P95*1e3, rep.RekeySpread.P95*1e3)
	if rep.ProtocolErrors > 0 {
		fmt.Printf("loadgen: %d PROTOCOL ERRORS (%d bad signatures, %d undecryptable)\n",
			rep.ProtocolErrors, rep.BadSignatures, rep.Undecryptable)
		for _, s := range rep.ErrorSamples {
			fmt.Printf("loadgen:   %s\n", s)
		}
		if *failOnErrors {
			return fmt.Errorf("%d protocol errors", rep.ProtocolErrors)
		}
	} else {
		fmt.Println("loadgen: zero protocol errors")
	}
	if sloGated && !sloPassed {
		for _, v := range rep.SLOResult.Violations {
			fmt.Printf("loadgen: SLO VIOLATION: %s\n", v)
		}
		return fmt.Errorf("%d SLO violations", len(rep.SLOResult.Violations))
	}
	return nil
}

// parseAddrMap parses comma-separated REAL=LOCAL redirect rewrites.
func parseAddrMap(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, nil
	}
	m := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		real, local, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || real == "" || local == "" {
			return nil, fmt.Errorf("pair %q is not REAL=LOCAL", pair)
		}
		m[real] = local
	}
	return m, nil
}

// faultPlanHash canonicalizes the fault plan behind a -fault-plan file:
// either a raw dst plan or a dstrun failure artifact (whose embedded plan
// wins). The hash matches what dstrun prints, so a soak report and a
// simulation replay of the same plan agree on the identifier.
func faultPlanHash(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var art struct {
		Plan dst.Plan `json:"plan"`
	}
	if err := json.Unmarshal(b, &art); err == nil && art.Plan.Nodes > 0 {
		return art.Plan.Hash(), nil
	}
	var plan dst.Plan
	if err := json.Unmarshal(b, &plan); err != nil {
		return "", fmt.Errorf("decoding %s: %w", path, err)
	}
	if plan.Nodes == 0 {
		return "", fmt.Errorf("%s does not look like a dst plan or artifact", path)
	}
	return plan.Hash(), nil
}
