package main

import (
	"testing"
	"time"
)

func TestRunFailsWithoutServer(t *testing.T) {
	err := run([]string{"-server", "127.0.0.1:1", "-join-timeout", time.Second.String()})
	if err == nil {
		t.Fatal("connected to a server that does not exist")
	}
}
