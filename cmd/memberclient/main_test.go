package main

import (
	"errors"
	"net"
	"testing"
	"time"

	"groupkey/internal/server"
	"groupkey/internal/wire"
)

func TestRunFailsWithoutServer(t *testing.T) {
	err := run([]string{"-server", "127.0.0.1:1", "-join-timeout", time.Second.String()})
	if err == nil {
		t.Fatal("connected to a server that does not exist")
	}
}

// TestJoinWithRetryHonorsDeferral drives the retry loop with an injected
// clock: every MsgRetry deferral must sleep exactly the server's hint and
// dial again, and admission on a later attempt succeeds.
func TestJoinWithRetryHonorsDeferral(t *testing.T) {
	hints := []time.Duration{750 * time.Millisecond, 250 * time.Millisecond}
	var slept []time.Duration
	attempts := 0
	want := &server.Client{}
	c, err := joinWithRetry(
		func() (*server.Client, error) {
			attempts++
			if attempts <= len(hints) {
				return nil, &server.DeferredError{After: hints[attempts-1]}
			}
			return want, nil
		},
		func(d time.Duration) { slept = append(slept, d) },
		func(string, ...any) {},
	)
	if err != nil || c != want {
		t.Fatalf("joinWithRetry = %v, %v", c, err)
	}
	if attempts != 3 {
		t.Errorf("dialed %d times, want 3", attempts)
	}
	if len(slept) != 2 || slept[0] != hints[0] || slept[1] != hints[1] {
		t.Errorf("slept %v, want %v", slept, hints)
	}
}

// TestJoinWithRetryTerminalError proves a terminal rejection is returned
// immediately: no sleep, no second dial.
func TestJoinWithRetryTerminalError(t *testing.T) {
	terminal := errors.New("server rejected: join rejected")
	attempts := 0
	c, err := joinWithRetry(
		func() (*server.Client, error) {
			attempts++
			return nil, terminal
		},
		func(time.Duration) { t.Error("slept on a terminal error") },
		func(string, ...any) {},
	)
	if c != nil || !errors.Is(err, terminal) {
		t.Fatalf("joinWithRetry = %v, %v", c, err)
	}
	if attempts != 1 {
		t.Errorf("dialed %d times, want 1", attempts)
	}
}

// TestJoinWithRetryOverWire exercises the loop against a scripted wire
// peer: one MsgRetry deferral (surfaced by Dial as DeferredError, driving
// one injected sleep), then a terminal MsgError on the second connection,
// which must not be retried.
func TestJoinWithRetryOverWire(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		// First connection: defer the join.
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if _, _, _, err := wire.ReadFrameGroup(conn); err == nil {
			wire.WriteFrame(conn, wire.MsgRetry, wire.EncodeRetryAfter(123*time.Millisecond))
		}
		conn.Close()
		// Second connection: terminal rejection.
		conn, err = ln.Accept()
		if err != nil {
			return
		}
		if _, _, _, err := wire.ReadFrameGroup(conn); err == nil {
			wire.WriteFrame(conn, wire.MsgError, []byte("closed for maintenance"))
		}
		conn.Close()
	}()

	var slept []time.Duration
	_, err = joinWithRetry(
		func() (*server.Client, error) {
			return server.Dial(ln.Addr().String(), wire.JoinRequest{}, 5*time.Second)
		},
		func(d time.Duration) { slept = append(slept, d) },
		func(string, ...any) {},
	)
	if err == nil {
		t.Fatal("joined a server that rejected the second attempt")
	}
	var def *server.DeferredError
	if errors.As(err, &def) {
		t.Fatalf("terminal error still wrapped as deferral: %v", err)
	}
	if len(slept) != 1 || slept[0] != 123*time.Millisecond {
		t.Errorf("slept %v, want exactly the 123ms hint", slept)
	}
}
