// Command memberclient joins a running keyserverd as a group member,
// prints every decrypted data frame, and leaves after the configured
// duration (or on Ctrl-C).
//
// Usage:
//
//	memberclient -server 127.0.0.1:7600 -loss 0.02 -stay 30s
//
// With -state the client persists its key store after every rekey and
// resumes the same membership on the next start — surviving both its own
// restarts and server restarts — instead of re-joining. Ctrl-C then
// detaches without leaving the group; -stay expiry still leaves properly
// and removes the state file.
//
// Against a replicated cluster, -server takes a comma-separated list of
// node addresses: the client rotates through them until one answers
// (redirects to the group's current primary are followed transparently),
// so any surviving node is a valid entry point after a failover.
package main

import (
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"groupkey/internal/server"
	"groupkey/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memberclient:", err)
		os.Exit(1)
	}
}

// dialAny tries each address in turn, returning the first success. A
// DeferredError (admission control) is surfaced immediately — it means a
// live server answered and asked us to wait, so rotating onward would
// dodge the backpressure the server just applied.
func dialAny(addrs []string, dial func(addr string) (*server.Client, error)) (*server.Client, error) {
	var lastErr error
	for _, addr := range addrs {
		c, err := dial(addr)
		if err == nil {
			return c, nil
		}
		var def *server.DeferredError
		if errors.As(err, &def) {
			return nil, err
		}
		fmt.Printf("memberclient: %s unreachable (%v), trying next\n", addr, err)
		lastErr = err
	}
	return nil, lastErr
}

// joinWithRetry dials until admitted. Admission deferrals (MsgRetry) are
// the server shedding join load, not a failure: the retry-after hint is
// honored via sleep and the dial repeated. Every other error — a terminal
// MsgError rejection included — is returned as-is, never retried.
func joinWithRetry(dial func() (*server.Client, error), sleep func(time.Duration),
	logf func(format string, a ...any)) (*server.Client, error) {
	for {
		c, err := dial()
		var def *server.DeferredError
		if errors.As(err, &def) {
			logf("memberclient: join deferred by server, retrying in %v\n", def.After)
			sleep(def.After)
			continue
		}
		return c, err
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("memberclient", flag.ContinueOnError)
	addr := fs.String("server", "127.0.0.1:7600", "key server address, or a comma-separated list of cluster node addresses")
	group := fs.Uint("group", 0, "hosted group to join on a multi-group server (0 = default group)")
	loss := fs.Float64("loss", -1, "loss rate to report at join (-1 = unknown)")
	longLived := fs.Bool("long", false, "report the long-lived class hint")
	stay := fs.Duration("stay", 0, "leave after this duration (0 = until Ctrl-C)")
	joinTimeout := fs.Duration("join-timeout", 30*time.Second, "how long to wait for admission")
	tlsCert := fs.String("tls-cert", "", "PEM certificate to pin; connect over TLS when set")
	udpAddr := fs.String("udp", "", "server UDP address to subscribe to the datagram rekey plane (empty = TCP only)")
	statePath := fs.String("state", "", "file persisting the member's keys for session resumption (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *group > 0xffffffff {
		return fmt.Errorf("-group %d does not fit the 32-bit wire address", *group)
	}
	gid := wire.GroupID(*group)
	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-server needs at least one address")
	}

	var pool *x509.CertPool
	if *tlsCert != "" {
		pemBytes, err := os.ReadFile(*tlsCert)
		if err != nil {
			return err
		}
		pool = x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemBytes) {
			return fmt.Errorf("no certificate found in %s", *tlsCert)
		}
	}

	// Resume from saved state when possible; fall back to a fresh join
	// (the saved membership may have been evicted while we were away).
	var c *server.Client
	var err error
	resumed := false
	if *statePath != "" {
		if state, rerr := os.ReadFile(*statePath); rerr == nil {
			c, err = dialAny(addrs, func(a string) (*server.Client, error) {
				if pool != nil {
					return server.ResumeDialTLS(a, state, *joinTimeout, pool)
				}
				return server.ResumeDial(a, state, *joinTimeout)
			})
			if err == nil {
				resumed = true
			} else {
				fmt.Printf("memberclient: resume failed (%v), joining fresh\n", err)
			}
		}
	}
	if c == nil {
		req := wire.JoinRequest{LossRate: *loss, LongLived: *longLived}
		dial := func() (*server.Client, error) {
			return dialAny(addrs, func(a string) (*server.Client, error) {
				if pool != nil {
					return server.DialTLSGroup(a, gid, req, *joinTimeout, pool)
				}
				return server.DialGroup(a, gid, req, *joinTimeout)
			})
		}
		c, err = joinWithRetry(dial, time.Sleep, func(format string, a ...any) {
			fmt.Printf(format, a...)
		})
		if err != nil {
			return err
		}
	}
	defer c.Close()
	verb := "admitted"
	if resumed {
		verb = "resumed"
	}
	fmt.Printf("memberclient: %s as member %d at epoch %d\n", verb, c.ID(), c.Epoch())

	if *udpAddr != "" {
		if err := c.EnableDatagram(*udpAddr, 0, 0); err != nil {
			return fmt.Errorf("enabling udp rekey plane: %w", err)
		}
		fmt.Printf("memberclient: subscribed to udp rekey plane at %s\n", *udpAddr)
	}

	saveState := func() {
		if *statePath == "" {
			return
		}
		state, serr := c.State()
		if serr != nil {
			return
		}
		if werr := os.WriteFile(*statePath, state, 0o600); werr != nil {
			fmt.Printf("memberclient: saving state: %v\n", werr)
		}
	}
	saveState()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	var leaveAt <-chan time.Time
	if *stay > 0 {
		leaveAt = time.After(*stay)
	}
	// Persist the key store periodically so a crash between rekeys loses
	// at most the newest epoch (the resume handshake re-delivers it).
	var saveTick <-chan time.Time
	if *statePath != "" {
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		saveTick = t.C
	}

	lastEpoch := c.Epoch()
	for {
		select {
		case msg, ok := <-c.Data():
			if !ok {
				saveState()
				return nil
			}
			fmt.Printf("data: %s\n", msg)
		case <-saveTick:
			if e := c.Epoch(); e != lastEpoch {
				lastEpoch = e
				saveState()
			}
		case <-leaveAt:
			fmt.Println("memberclient: leaving")
			err := c.Leave()
			if *statePath != "" {
				os.Remove(*statePath)
			}
			return err
		case <-stop:
			if *statePath != "" {
				saveState()
				fmt.Println("memberclient: detaching (state saved; restart to resume)")
				return nil
			}
			fmt.Println("memberclient: leaving")
			return c.Leave()
		}
	}
}
