// Command memberclient joins a running keyserverd as a group member,
// prints every decrypted data frame, and leaves after the configured
// duration (or on Ctrl-C).
//
// Usage:
//
//	memberclient -server 127.0.0.1:7600 -loss 0.02 -stay 30s
package main

import (
	"crypto/x509"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"groupkey/internal/server"
	"groupkey/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memberclient:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("memberclient", flag.ContinueOnError)
	addr := fs.String("server", "127.0.0.1:7600", "key server address")
	loss := fs.Float64("loss", -1, "loss rate to report at join (-1 = unknown)")
	longLived := fs.Bool("long", false, "report the long-lived class hint")
	stay := fs.Duration("stay", 0, "leave after this duration (0 = until Ctrl-C)")
	joinTimeout := fs.Duration("join-timeout", 30*time.Second, "how long to wait for admission")
	tlsCert := fs.String("tls-cert", "", "PEM certificate to pin; connect over TLS when set")
	if err := fs.Parse(args); err != nil {
		return err
	}

	req := wire.JoinRequest{LossRate: *loss, LongLived: *longLived}
	var c *server.Client
	var err error
	if *tlsCert != "" {
		pemBytes, rerr := os.ReadFile(*tlsCert)
		if rerr != nil {
			return rerr
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemBytes) {
			return fmt.Errorf("no certificate found in %s", *tlsCert)
		}
		c, err = server.DialTLS(*addr, req, *joinTimeout, pool)
	} else {
		c, err = server.Dial(*addr, req, *joinTimeout)
	}
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("memberclient: admitted as member %d at epoch %d\n", c.ID(), c.Epoch())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	var leaveAt <-chan time.Time
	if *stay > 0 {
		leaveAt = time.After(*stay)
	}

	for {
		select {
		case msg, ok := <-c.Data():
			if !ok {
				return nil
			}
			fmt.Printf("data: %s\n", msg)
		case <-leaveAt:
			fmt.Println("memberclient: leaving")
			return c.Leave()
		case <-stop:
			fmt.Println("memberclient: leaving")
			return c.Leave()
		}
	}
}
