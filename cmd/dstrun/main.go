// Command dstrun drives the deterministic full-system simulation: seed
// sweeps for fault exploration, single-seed runs for debugging, and
// artifact replay for regression pinning.
//
// Usage:
//
//	dstrun -seeds 200 -profile mixed -out failure.json   # sweep, shrink first failure
//	dstrun -seed 42 -profile crash -v                    # one seed, full trace
//	dstrun -replay failure.json                          # replay a shrunk artifact
//
// Same seed, same binary: byte-identical trace and state hashes. The
// exit status is nonzero when any oracle fired (or a replay failed to
// reproduce), so sweeps gate CI directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"groupkey/internal/dst"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dstrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dstrun", flag.ContinueOnError)
	seed := fs.Uint64("seed", 0, "run exactly this seed (0 = sweep mode)")
	seeds := fs.Int("seeds", 20, "sweep: how many consecutive seeds to explore")
	base := fs.Uint64("seed-base", 1, "sweep: first seed")
	profileFlag := fs.String("profile", "all", "fault profile: "+profileNames()+", or all")
	duration := fs.Duration("duration", 0, "override the generated plan duration (0 = plan default)")
	replayPath := fs.String("replay", "", "replay a failure artifact instead of sweeping")
	out := fs.String("out", "dst_failure.json", "where to write the shrunk failure artifact")
	verbose := fs.Bool("v", false, "print the full event trace (single-seed and replay modes)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *replayPath != "" {
		return replay(*replayPath, *verbose)
	}

	profiles, err := pickProfiles(*profileFlag)
	if err != nil {
		return err
	}

	if *seed != 0 {
		return single(*seed, profiles, *duration, *verbose)
	}
	return sweep(*base, *seeds, profiles, *out)
}

func profileNames() string {
	names := make([]string, len(dst.Profiles))
	for i, p := range dst.Profiles {
		names[i] = string(p)
	}
	return strings.Join(names, "|")
}

func pickProfiles(name string) ([]dst.Profile, error) {
	if name == "all" {
		return dst.Profiles, nil
	}
	for _, p := range dst.Profiles {
		if string(p) == name {
			return []dst.Profile{p}, nil
		}
	}
	return nil, fmt.Errorf("unknown profile %q (want %s, or all)", name, profileNames())
}

// single runs one seed under each selected profile and reports hashes —
// the determinism check is rerunning and diffing the output.
func single(seed uint64, profiles []dst.Profile, duration time.Duration, verbose bool) error {
	failed := false
	for _, profile := range profiles {
		plan := dst.GenPlan(seed, profile)
		if duration > 0 {
			plan.Duration = duration
		}
		res := dst.Run(plan, verbose)
		fmt.Printf("seed %d profile %-9s plan=%.12s trace=%.12s state=%.12s rekeys=%d violations=%d\n",
			seed, profile, res.PlanHash, res.TraceHash, res.StateHash,
			res.Stats.Rekeys, len(res.Violations))
		if verbose {
			for _, l := range res.Trace {
				fmt.Println("  " + l)
			}
		}
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("oracle violations")
	}
	return nil
}

// sweep explores seeds profile by profile; the first failure is shrunk
// into a replayable artifact and ends the sweep with a nonzero exit.
func sweep(base uint64, seeds int, profiles []dst.Profile, out string) error {
	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	for _, profile := range profiles {
		start := time.Now()
		art, passed := dst.Explore(base, seeds, profile, logf)
		if art == nil {
			fmt.Printf("profile %-9s %d/%d seeds passed (%.1fs)\n",
				profile, passed, seeds, time.Since(start).Seconds())
			continue
		}
		if err := art.WriteFile(out); err != nil {
			return fmt.Errorf("writing artifact: %w", err)
		}
		fmt.Printf("profile %-9s FAILED at seed %d after %d clean seeds\n", profile, base+uint64(passed), passed)
		for _, v := range art.Violations {
			fmt.Printf("  %s\n", v)
		}
		fmt.Printf("shrunk artifact (%d ops, was %d; %d shrink runs) written to %s\n",
			len(art.Plan.Ops), art.OriginalOps, art.ShrinkRuns, out)
		fmt.Printf("replay with: dstrun -replay %s\n", out)
		return fmt.Errorf("seed sweep failed")
	}
	return nil
}

func replay(path string, verbose bool) error {
	art, err := dst.LoadArtifact(path)
	if err != nil {
		return err
	}
	res, ok := dst.Replay(art, verbose)
	if verbose {
		for _, l := range res.Trace {
			fmt.Println("  " + l)
		}
	}
	fmt.Printf("replay plan=%.12s trace=%.12s state=%.12s violations=%d\n",
		res.PlanHash, res.TraceHash, res.StateHash, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  %s\n", v)
	}
	if len(art.Violations) == 0 {
		// A clean artifact (a chaos scenario's archived fault plan) replays
		// successfully when the oracles stay green.
		if !ok {
			return fmt.Errorf("clean plan replay violated %d oracle(s)", len(res.Violations))
		}
		fmt.Println("clean plan replayed, oracles green")
		return nil
	}
	if !ok {
		return fmt.Errorf("artifact did not reproduce (recorded kinds %v)", kinds(art))
	}
	fmt.Println("failure reproduced")
	return nil
}

func kinds(a *dst.Artifact) []dst.ViolationKind {
	var out []dst.ViolationKind
	seen := map[dst.ViolationKind]bool{}
	for _, v := range a.Violations {
		if !seen[v.Kind] {
			seen[v.Kind] = true
			out = append(out, v.Kind)
		}
	}
	return out
}
