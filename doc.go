// Package groupkey is a group key management library for secure multicast,
// reproducing "Performance Optimizations for Group Key Management Schemes
// for Secure Multicast" (Zhu, Setia, Jajodia; ICDCS 2003).
//
// The library implements scalable group rekeying with logical key
// hierarchies (LKH) and the paper's two optimizations — two-partition key
// trees exploiting membership-duration patterns, and loss-homogenized key
// trees exploiting receiver loss heterogeneity — together with every
// substrate they need: batched d-ary key trees over real AES-GCM key
// wrapping, the WKA-BKR / proactive-FEC / multi-send reliable rekey
// transports, a Reed-Solomon erasure coder, a lossy multicast network
// simulator, membership workload generators, the paper's analytic models,
// and a TCP key-server daemon.
//
// Layout:
//
//	internal/core        key-server schemes (the paper's contribution)
//	internal/keytree     batched d-ary LKH trees
//	internal/keycrypt    keys, AES-GCM wrapping, OFT primitives, data sealing
//	internal/transport   reliable rekey transport protocols
//	internal/fec         GF(2^8) Reed-Solomon erasure coding
//	internal/netsim      per-receiver lossy multicast simulation
//	internal/workload    membership churn generators
//	internal/analytic    the paper's closed-form models (Appendix A/B, §3.3, §4.3)
//	internal/sim         end-to-end discrete simulation harness
//	internal/experiments per-figure reproduction harness
//	internal/member      receiver-side key store
//	internal/adaptive    §3.4 churn estimation and scheme advisor
//	internal/wire        framed, Ed25519-signed TCP protocol
//	internal/server      key-server daemon (TLS-capable) and client
//	internal/elk         ELK hint-based rekeying (survey scheme)
//	internal/subsetdiff  NNL Subset-Difference broadcast encryption (survey scheme)
//	internal/marks       MARKS time-slot key sequences (survey scheme)
//
// Entry points: cmd/lkhbench regenerates every table and figure,
// cmd/lkhsim runs simulations, cmd/keyserverd and cmd/memberclient run the
// live system, and examples/ holds runnable walkthroughs.
package groupkey
