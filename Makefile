# groupkey — build, test and paper-reproduction targets.

GO ?= go

.PHONY: all build vet test test-race test-short bench repro charts examples soak benchgate dst dst-nightly fuzz chaos-bins chaos-smoke chaos-nightly clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# Benchmark harness: one bench per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (analytic, as the paper
# did) plus the extension experiments, and the model-vs-implementation
# cross-validation.
repro:
	$(GO) run ./cmd/lkhbench -exp all
	$(GO) run ./cmd/lkhbench -exp sim -n 2048 -periods 80

# The paper's figures as ASCII charts.
charts:
	$(GO) run ./cmd/lkhbench -exp fig3 -format chart
	$(GO) run ./cmd/lkhbench -exp fig4 -format chart
	$(GO) run ./cmd/lkhbench -exp fig6 -format chart
	$(GO) run ./cmd/lkhbench -exp fig7 -format chart

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/oft
	$(GO) run ./examples/netgroup
	$(GO) run ./examples/payperview
	$(GO) run ./examples/lossaware
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/stateless

# 30-second local soak: keyserverd under churn from cmd/loadgen, failing
# on any protocol error; report lands in SOAK_report.json.
soak:
	$(GO) build -o /tmp/groupkey-keyserverd ./cmd/keyserverd
	$(GO) build -o /tmp/groupkey-loadgen ./cmd/loadgen
	/tmp/groupkey-keyserverd -listen 127.0.0.1:7800 -period 250ms \
		-join-rate 500 -max-pending-joins 512 & \
	SERVER_PID=$$!; sleep 1; \
	/tmp/groupkey-loadgen -server 127.0.0.1:7800 -members 200 -duration 30s \
		-compress 500 -ramp 100 -report SOAK_report.json -fail-on-errors; \
	STATUS=$$?; kill $$SERVER_PID; exit $$STATUS

# Compare a fresh perf run against the committed baseline (CI gate),
# including the sparse fan-out bytes/member floor and the placement
# planner's wraps/batch reduction floor.
benchgate:
	$(GO) run ./cmd/lkhbench -exp perf -bench-out BENCH_rekey.new.json
	$(GO) run ./cmd/benchgate -baseline BENCH_rekey.json \
		-candidate BENCH_rekey.new.json -max-regress 0.25 \
		-min-sparse-reduction 5 -min-planner-reduction 5

# Deterministic full-system simulation: a 20-seed smoke across every
# fault profile, plus the planted-bug regression proving the harness
# still finds, shrinks and replays a real fencing race.
dst:
	$(GO) run ./cmd/dstrun -seeds 20 -profile all -out /tmp/dst_failure.json
	$(GO) test -tags dst_plantedbug -run PlantedFencing ./internal/dst/

# The nightly-depth sweep (~30s): 200 seeds per profile.
dst-nightly:
	$(GO) run ./cmd/dstrun -seeds 200 -profile all -out /tmp/dst_failure.json

# Real binaries for the chaos harness. chaosrun shells out to
# keyserverd and loadgen, so they must exist as files, not `go run`s.
chaos-bins:
	mkdir -p bin
	$(GO) build -o bin/keyserverd ./cmd/keyserverd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	$(GO) build -o bin/chaosrun ./cmd/chaosrun
	$(GO) build -o bin/dstrun ./cmd/dstrun

# Per-PR WAN chaos gate (~1 min): the two smoke scenarios — transcon
# with UDP and a link flap, mobile-3g against a 3-node cluster with a
# primary SIGKILL — behind userspace WAN-shaping proxies, SLO-gated,
# then a deterministic dst replay of each scenario's fault plan.
chaos-smoke: chaos-bins
	./bin/chaosrun -scenario smoke -out chaos_out
	./bin/dstrun -replay chaos_out/smoke-transcon/fault_plan.json
	./bin/dstrun -replay chaos_out/smoke-mobile-3g/fault_plan.json

# The full nightly chaos matrix (~4 min): every builtin scenario,
# including satellite links, flash crowds, bandwidth squeezes and
# multi-region failover, plus a replay of every archived fault plan.
chaos-nightly: chaos-bins
	./bin/chaosrun -scenario nightly -out chaos_out
	for f in chaos_out/*/fault_plan.json; do \
		./bin/dstrun -replay $$f || exit 1; \
	done

# Short fuzzing pass over the wire protocol and durability decoders.
fuzz:
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=10s ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeRekey -fuzztime=10s ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeWelcome -fuzztime=10s ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeMembershipBatch -fuzztime=10s ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeSparseRekey -fuzztime=10s ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeDgram -fuzztime=10s ./internal/wire/
	$(GO) test -fuzz=FuzzWALRecord -fuzztime=10s ./internal/store/
	$(GO) test -fuzz=FuzzRestore -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzDecodeReport -fuzztime=10s ./internal/loadgen/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
